//! Small deterministic pseudo-random number generator.
//!
//! The schedulers, workload drivers and randomized test batteries all need
//! *reproducible* randomness (a seed names a schedule), not cryptographic
//! quality. This is Steele, Lea & Flood's SplitMix64 — 64 bits of state,
//! one multiply-xorshift round per draw, passes BigCrush — implemented
//! locally so the workspace has no external dependencies.

/// A seedable SplitMix64 generator. Two generators built from the same seed
/// produce identical streams.
///
/// # Example
///
/// ```
/// use rmr_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_index(10) < 10);
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Draws the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws a uniform index in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        // Multiply-shift mapping; the modulo bias is < 2^-53 for the small
        // bounds the schedulers use and irrelevant to reproducibility.
        (self.next_u64() % bound as u64) as usize
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 top bits → the standard [0, 1) double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut c = SplitMix64::new(8);
        assert_ne!(a[0], c.next_u64());
    }

    #[test]
    fn indices_stay_in_bounds_and_cover() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = r.gen_index(5);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut r = SplitMix64::new(9);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&heads), "got {heads}");
    }
}
