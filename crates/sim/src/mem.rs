//! Word-addressed shared memory with line-level atomicity.
//!
//! Each numbered line of the paper's figures performs exactly one atomic
//! shared-memory operation; the simulator enforces that granularity by
//! funneling every access through [`MemAccess`], which also feeds the RMR
//! [`CostModel`] implementation.
//!
//! [`CostModel`]: crate::cost::CostModel

use crate::cost::{AccessKind, CostModel};
use std::fmt;

/// Identifies one shared variable (a 64-bit cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(usize);

impl VarId {
    /// The cell index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds a `VarId` from a raw index (tests and cost-model plumbing).
    pub fn from_index(index: usize) -> Self {
        VarId(index)
    }
}

/// Declares an algorithm's shared variables and their initial values.
///
/// # Example
///
/// ```
/// use rmr_sim::mem::MemLayout;
///
/// let mut layout = MemLayout::new();
/// let d = layout.var("D", 0);
/// let gate0 = layout.var("Gate[0]", 1);
/// let cells = layout.build();
/// assert_eq!(cells[d.index()], 0);
/// assert_eq!(cells[gate0.index()], 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemLayout {
    init: Vec<u64>,
    names: Vec<String>,
}

impl MemLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a named variable with an initial value.
    pub fn var(&mut self, name: &str, init: u64) -> VarId {
        let id = VarId(self.init.len());
        self.init.push(init);
        self.names.push(name.to_string());
        id
    }

    /// Allocates `n` variables sharing a name prefix (`name[i]`).
    pub fn array(&mut self, name: &str, n: usize, init: u64) -> Vec<VarId> {
        (0..n).map(|i| self.var(&format!("{name}[{i}]"), init)).collect()
    }

    /// The initial memory image.
    pub fn build(&self) -> Vec<u64> {
        self.init.clone()
    }

    /// Number of variables declared.
    pub fn len(&self) -> usize {
        self.init.len()
    }

    /// Whether no variables have been declared.
    pub fn is_empty(&self) -> bool {
        self.init.is_empty()
    }

    /// The name of a variable (for diagnostics).
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }
}

/// One process's window onto shared memory for a single atomic step.
///
/// Every operation charges the cost model and bumps the per-step RMR
/// counter. An algorithm step must perform **at most one** operation —
/// [`MemAccess`] panics (in debug builds) on a second one, which keeps the
/// encodings honest about the paper's atomicity.
pub struct MemAccess<'a> {
    pid: usize,
    cells: &'a mut [u64],
    cost: &'a mut dyn CostModel,
    rmrs: u64,
    ops: u32,
}

impl<'a> MemAccess<'a> {
    /// Creates the access window for `pid`.
    pub fn new(pid: usize, cells: &'a mut [u64], cost: &'a mut dyn CostModel) -> Self {
        Self { pid, cells, cost, rmrs: 0, ops: 0 }
    }

    fn charge(&mut self, var: VarId, kind: AccessKind) {
        self.ops += 1;
        debug_assert!(
            self.ops <= 1,
            "an algorithm step performed more than one shared-memory operation"
        );
        if self.cost.account(self.pid, var, kind) {
            self.rmrs += 1;
        }
    }

    /// Atomic read.
    pub fn read(&mut self, var: VarId) -> u64 {
        self.charge(var, AccessKind::Read);
        self.cells[var.index()]
    }

    /// Atomic write.
    pub fn write(&mut self, var: VarId, value: u64) {
        self.charge(var, AccessKind::Update);
        self.cells[var.index()] = value;
    }

    /// Atomic fetch&add (wrapping); returns the **previous** value, like
    /// the paper's `F&A`.
    pub fn faa(&mut self, var: VarId, delta: u64) -> u64 {
        self.charge(var, AccessKind::Update);
        let old = self.cells[var.index()];
        self.cells[var.index()] = old.wrapping_add(delta);
        old
    }

    /// Atomic compare&swap; returns `true` on success.
    pub fn cas(&mut self, var: VarId, expected: u64, new: u64) -> bool {
        self.charge(var, AccessKind::Update);
        if self.cells[var.index()] == expected {
            self.cells[var.index()] = new;
            true
        } else {
            false
        }
    }

    /// RMRs charged during this step.
    pub fn rmrs(&self) -> u64 {
        self.rmrs
    }

    /// Shared-memory operations performed during this step (0 or 1).
    pub fn ops(&self) -> u32 {
        self.ops
    }

    /// The acting process.
    pub fn pid(&self) -> usize {
        self.pid
    }
}

impl fmt::Debug for MemAccess<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemAccess")
            .field("pid", &self.pid)
            .field("rmrs", &self.rmrs)
            .field("ops", &self.ops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};

    #[test]
    fn layout_allocates_sequential_ids() {
        let mut l = MemLayout::new();
        let a = l.var("a", 7);
        let arr = l.array("b", 3, 1);
        assert_eq!(a.index(), 0);
        assert_eq!(arr.iter().map(|v| v.index()).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(l.build(), vec![7, 1, 1, 1]);
        assert_eq!(l.name(arr[1]), "b[1]");
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
    }

    #[test]
    fn faa_returns_previous_value() {
        let mut cells = vec![5u64];
        let mut cost = FreeModel;
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        assert_eq!(m.faa(VarId(0), 3), 5);
        assert_eq!(cells[0], 8);
    }

    #[test]
    fn faa_wraps() {
        let mut cells = vec![u64::MAX];
        let mut cost = FreeModel;
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        assert_eq!(m.faa(VarId(0), 1), u64::MAX);
        assert_eq!(cells[0], 0);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut cells = vec![10u64];
        let mut cost = FreeModel;
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        assert!(m.cas(VarId(0), 10, 20));
        assert_eq!(cells[0], 20);
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        assert!(!m.cas(VarId(0), 10, 30));
        assert_eq!(cells[0], 20);
    }

    #[test]
    fn rmrs_are_charged_through_the_model() {
        let mut cells = vec![0u64];
        let mut cost = CcModel::new(2, 1);
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        m.write(VarId(0), 1);
        assert_eq!(m.rmrs(), 1); // first touch is remote
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        m.write(VarId(0), 2);
        assert_eq!(m.rmrs(), 0); // exclusive holder now
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "more than one shared-memory operation")]
    fn second_op_in_one_step_panics() {
        let mut cells = vec![0u64, 0];
        let mut cost = FreeModel;
        let mut m = MemAccess::new(0, &mut cells, &mut cost);
        let _ = m.read(VarId(0));
        let _ = m.read(VarId(1));
    }
}
