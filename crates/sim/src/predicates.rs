//! Safety predicates shared by the model checker and the real-code
//! checker.
//!
//! Both exploration engines — [`crate::explore`] over the line-level
//! re-encodings, and `rmr-check` over the *shipped* lock implementations —
//! enforce the same exclusion properties: reader-writer exclusion (the
//! paper's P1) and plain mutual exclusion for the mutex substrate. This
//! module is the single statement of those predicates, so the two
//! checkers cannot drift apart; each engine is responsible only for
//! *observing* the occupancy counts it feeds in (the explorer derives them
//! from phase maps, `rmr-check` from oracle counters updated at
//! critical-section boundaries). The explorer's user-supplied invariants
//! additionally plug in through the [`StatePredicate`] trait.

use std::fmt;

/// A safety predicate evaluated against an algorithm and one of its
/// observed states.
///
/// The explorer's per-state checks ([`crate::explore::StateCheck`]) are
/// trait objects of this, and the paper-invariant functions in
/// [`crate::invariants`] implement it through the blanket closure impl —
/// any `fn(&A, &S) -> Result<(), String>` is a predicate.
pub trait StatePredicate<A: ?Sized, S: ?Sized> {
    /// Evaluates the predicate; `Err` carries a human-readable violation.
    fn check(&self, alg: &A, state: &S) -> Result<(), String>;
}

impl<A: ?Sized, S: ?Sized, F> StatePredicate<A, S> for F
where
    F: Fn(&A, &S) -> Result<(), String>,
{
    fn check(&self, alg: &A, state: &S) -> Result<(), String> {
        self(alg, state)
    }
}

/// Critical-section occupancy, as counted by whichever engine is
/// observing: number of writers and readers simultaneously inside the CS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Writers currently in the critical section.
    pub writers: usize,
    /// Readers currently in the critical section.
    pub readers: usize,
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} writer(s) + {} reader(s)", self.writers, self.readers)
    }
}

/// The paper's P1 (reader-writer exclusion): at most one writer, and never
/// a writer together with a reader.
///
/// # Example
///
/// ```
/// use rmr_sim::predicates::{rw_exclusion, Occupancy};
///
/// assert!(rw_exclusion(Occupancy { writers: 0, readers: 5 }).is_ok());
/// assert!(rw_exclusion(Occupancy { writers: 1, readers: 0 }).is_ok());
/// assert!(rw_exclusion(Occupancy { writers: 1, readers: 1 }).is_err());
/// assert!(rw_exclusion(Occupancy { writers: 2, readers: 0 }).is_err());
/// ```
pub fn rw_exclusion(occ: Occupancy) -> Result<(), String> {
    if occ.writers > 1 || (occ.writers == 1 && occ.readers > 0) {
        Err(format!("P1 violated: {occ} in CS"))
    } else {
        Ok(())
    }
}

/// Plain mutual exclusion for the mutex substrate: at most one holder.
///
/// # Example
///
/// ```
/// use rmr_sim::predicates::mutex_exclusion;
///
/// assert!(mutex_exclusion(1).is_ok());
/// assert!(mutex_exclusion(2).is_err());
/// ```
pub fn mutex_exclusion(holders: usize) -> Result<(), String> {
    if holders > 1 {
        Err(format!("mutual exclusion violated: {holders} holders in CS"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_exclusion_matches_p1() {
        for readers in 0..4 {
            assert!(rw_exclusion(Occupancy { writers: 0, readers }).is_ok());
        }
        assert!(rw_exclusion(Occupancy { writers: 1, readers: 0 }).is_ok());
        for readers in 1..4 {
            assert!(rw_exclusion(Occupancy { writers: 1, readers }).is_err());
        }
        assert!(rw_exclusion(Occupancy { writers: 2, readers: 0 }).is_err());
    }

    #[test]
    fn closures_and_fn_items_are_state_predicates() {
        fn takes<P: StatePredicate<str, usize>>(p: P, alg: &str, s: usize) -> Result<(), String> {
            p.check(alg, &s)
        }
        fn fits(alg: &str, n: &usize) -> Result<(), String> {
            if *n <= alg.len() {
                Ok(())
            } else {
                Err(format!("{n} exceeds {}", alg.len()))
            }
        }
        assert!(takes(fits, "abcd", 3).is_ok());
        assert!(takes(fits, "abcd", 5).is_err());
        assert!(takes(|_: &str, _: &usize| Ok(()), "x", 9).is_ok());
    }
}
