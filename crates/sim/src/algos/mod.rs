//! Line-level machine encodings of the paper's algorithms and the
//! baselines.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Figure 1 — SWMR writer priority + starvation freedom |
//! | [`fig2`] | Figure 2 — SWMR reader priority |
//! | [`fig3`] | Figure 3 — transformation `T` (both instantiations) |
//! | [`fig4`] | Figure 4 — MWMR writer priority |
//! | [`anderson`] | Anderson's lock `M` |
//! | [`baselines`] | comparator locks (centralized, ticket, tree) |
//! | [`mutexes`] | TAS/TTAS/Anderson mutexes (cost-model calibration) |
//! | [`mutants`] | deliberately broken variants (§3.3/§4.3 regression checks) |

pub mod anderson;
pub mod baselines;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod mutants;
pub mod mutexes;

pub use baselines::{Centralized, TicketRw, Tournament};
pub use fig1::Fig1;
pub use fig2::Fig2;
pub use fig3::{Fig3Rp, Fig3Sf};
pub use fig4::Fig4;
