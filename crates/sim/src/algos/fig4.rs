//! Line-level encoding of Figure 4 (MWMR, writer priority — Theorem 5).
//!
//! Writers are processes `0..writers`, readers `writers..writers+readers`.
//! Readers run the Figure 1 reader protocol unchanged. `W-token` is
//! encoded as: side `0`/`1` ↦ `0`/`1`, `false` ↦ `2`, pid `p` ↦ `p + 3`.
//! `W-token` starts at side `1` (the complement of the initial `D = 0`);
//! see DESIGN.md §6 for why that is the unique deadlock-free choice.

use super::anderson::AndersonVars;
use super::fig1::{self, Fig1Vars, WriterLocal};
use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout, VarId};

/// `W-token` encoding of `false`.
pub const WTOKEN_FALSE: u64 = 2;
/// `W-token` encoding offset for pids.
pub const WTOKEN_PID_BASE: u64 = 3;

fn is_side(t: u64) -> bool {
    t < 2
}

fn is_pid(t: u64) -> bool {
    t >= WTOKEN_PID_BASE
}

/// Writer program counter (paper line about to execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum F4Pc {
    Remainder,
    L3,
    L5,
    L6,
    L8,
    MTicket,
    MWait,
    L10,
    L11,
    L12,
    InnerWr,
    Cs,
    X15,
    X16,
    MRel1,
    MRel2,
    X18,
    X19,
    X20,
}

/// Writer local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct F4Writer {
    /// Program counter.
    pub pc: F4Pc,
    /// Pid-valued token read at line 3 (expected value for the line-5 CAS).
    pub t_pid: u64,
    /// Side read at line 6.
    pub side_t: u64,
    /// Anderson ticket for `M`.
    pub ticket: u64,
    /// `currD` (line 10).
    pub curr_d: u64,
    /// `prevD = ¬currD`.
    pub prev_d: u64,
    /// The Figure 1 waiting-room sub-machine (lines 4–12 of Fig. 1).
    pub inner: WriterLocal,
}

impl F4Writer {
    fn initial() -> Self {
        Self {
            pc: F4Pc::Remainder,
            t_pid: 0,
            side_t: 0,
            ticket: 0,
            curr_d: 0,
            prev_d: 0,
            inner: WriterLocal::initial(),
        }
    }
}

/// Per-process local state of the [`Fig4`] machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig4Local {
    /// A writer.
    Writer(F4Writer),
    /// A reader (Figure 1 protocol).
    Reader(fig1::ReaderLocal),
}

/// The Figure 4 machine.
#[derive(Debug)]
pub struct Fig4 {
    layout: MemLayout,
    vars: Fig1Vars,
    m: AndersonVars,
    /// `Wcount`.
    wcount: VarId,
    /// `W-token`.
    wtoken: VarId,
    writers: usize,
    readers: usize,
}

impl Fig4 {
    /// Builds the machine with `writers` writers and `readers` readers.
    pub fn new(writers: usize, readers: usize) -> Self {
        assert!(writers > 0, "need at least one writer");
        let mut layout = MemLayout::new();
        let vars = Fig1Vars::alloc(&mut layout);
        let m = AndersonVars::alloc(&mut layout, writers);
        let wcount = layout.var("Wcount", 0);
        let wtoken = layout.var("W-token", 1); // side 1 = ¬(initial D)
        Self { layout, vars, m, wcount, wtoken, writers, readers }
    }

    /// The inner Figure 1 shared variables.
    pub fn vars(&self) -> &Fig1Vars {
        &self.vars
    }

    /// The `W-token` variable id (diagnostics).
    pub fn wtoken_var(&self) -> VarId {
        self.wtoken
    }

    /// The `Wcount` variable id (diagnostics / invariant checking).
    pub fn wcount_var(&self) -> VarId {
        self.wcount
    }

    fn step_writer(&self, pid: usize, w: &mut F4Writer, mem: &mut MemAccess<'_>) -> StepEvent {
        let my_token = pid as u64 + WTOKEN_PID_BASE;
        match w.pc {
            F4Pc::Remainder => {
                // line 2: F&A(Wcount, 1)
                mem.faa(self.wcount, 1);
                w.pc = F4Pc::L3;
            }
            F4Pc::L3 => {
                // lines 3–4: t ← W-token; if (t ∈ PID)
                let t = mem.read(self.wtoken);
                if is_pid(t) {
                    w.t_pid = t;
                    w.pc = F4Pc::L5;
                } else {
                    w.pc = F4Pc::L6;
                }
            }
            F4Pc::L5 => {
                // line 5: CAS(W-token, t, false) — outcome ignored.
                let _ = mem.cas(self.wtoken, w.t_pid, WTOKEN_FALSE);
                w.pc = F4Pc::L6;
            }
            F4Pc::L6 => {
                // lines 6–7: t ← W-token; if (t ∈ {0, 1})
                let t = mem.read(self.wtoken);
                if is_side(t) {
                    w.side_t = t;
                    w.pc = F4Pc::L8;
                } else {
                    w.pc = F4Pc::MTicket;
                }
            }
            F4Pc::L8 => {
                // line 8: D ← t (the SWWP doorway, by proxy)
                mem.write(self.vars.d, w.side_t);
                w.pc = F4Pc::MTicket;
            }
            F4Pc::MTicket => {
                // line 9: acquire(M) — doorway (ticket draw)
                w.ticket = self.m.take_ticket(mem);
                w.pc = F4Pc::MWait;
            }
            F4Pc::MWait => {
                // line 9: acquire(M) — waiting room
                if self.m.poll(w.ticket, mem) {
                    w.pc = F4Pc::L10;
                } else {
                    return StepEvent::Blocked;
                }
            }
            F4Pc::L10 => {
                // line 10: currD ← D, prevD ← ¬currD
                w.curr_d = mem.read(self.vars.d);
                w.prev_d = 1 - w.curr_d;
                w.pc = F4Pc::L11;
            }
            F4Pc::L11 => {
                // line 11: if (W-token ∈ {0, 1})
                let t = mem.read(self.wtoken);
                w.pc = if is_side(t) { F4Pc::L12 } else { F4Pc::Cs };
            }
            F4Pc::L12 => {
                // line 12: wait till Gate[prevD]
                if mem.read(self.vars.gates[w.prev_d as usize]) == 1 {
                    w.inner = WriterLocal::at_waiting_room(w.curr_d);
                    w.pc = F4Pc::InnerWr;
                } else {
                    return StepEvent::Blocked;
                }
            }
            F4Pc::InnerWr => {
                // line 13: SW-waiting-room() — Fig. 1 lines 4–12.
                let ev = fig1::step_writer(&self.vars, &mut w.inner, mem);
                if w.inner.pc == fig1::WPc::Cs {
                    w.pc = F4Pc::Cs;
                }
                if ev == StepEvent::Blocked {
                    return StepEvent::Blocked;
                }
            }
            F4Pc::Cs => {
                // line 14: CRITICAL SECTION
                w.pc = F4Pc::X15;
            }
            F4Pc::X15 => {
                // line 15: W-token ← p
                mem.write(self.wtoken, my_token);
                w.pc = F4Pc::X16;
            }
            F4Pc::X16 => {
                // line 16: F&A(Wcount, -1)
                mem.faa(self.wcount, 1u64.wrapping_neg());
                w.pc = F4Pc::MRel1;
            }
            F4Pc::MRel1 => {
                // line 17: release(M) — close own slot
                self.m.close_own(w.ticket, mem);
                w.pc = F4Pc::MRel2;
            }
            F4Pc::MRel2 => {
                // line 17: release(M) — open successor slot
                self.m.open_next(w.ticket, mem);
                w.pc = F4Pc::X18;
            }
            F4Pc::X18 => {
                // line 18: if (Wcount = 0)
                let c = mem.read(self.wcount);
                w.pc = if c == 0 { F4Pc::X19 } else { F4Pc::Remainder };
            }
            F4Pc::X19 => {
                // line 19: if (CAS(W-token, p, prevD))
                let ok = mem.cas(self.wtoken, my_token, w.prev_d);
                w.pc = if ok { F4Pc::X20 } else { F4Pc::Remainder };
            }
            F4Pc::X20 => {
                // line 20: Gate[currD] ← true — the Fig. 1 writer exit.
                mem.write(self.vars.gates[w.curr_d as usize], 1);
                w.pc = F4Pc::Remainder;
            }
        }
        StepEvent::Progress
    }

    fn writer_phase(w: &F4Writer) -> Phase {
        match w.pc {
            F4Pc::Remainder => Phase::Remainder,
            // Lines 2–8 plus M's ticket draw form the bounded doorway.
            F4Pc::L3 | F4Pc::L5 | F4Pc::L6 | F4Pc::L8 | F4Pc::MTicket => Phase::Doorway,
            F4Pc::MWait | F4Pc::L10 | F4Pc::L11 | F4Pc::L12 | F4Pc::InnerWr => Phase::WaitingRoom,
            F4Pc::Cs => Phase::Cs,
            F4Pc::X15
            | F4Pc::X16
            | F4Pc::MRel1
            | F4Pc::MRel2
            | F4Pc::X18
            | F4Pc::X19
            | F4Pc::X20 => Phase::Exit,
        }
    }
}

impl Algorithm for Fig4 {
    type Local = Fig4Local;

    fn name(&self) -> &'static str {
        "fig4-mwmr-writer-priority"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.writers + self.readers
    }

    fn role(&self, pid: usize) -> Role {
        if pid < self.writers {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, pid: usize) -> Fig4Local {
        if pid < self.writers {
            Fig4Local::Writer(F4Writer::initial())
        } else {
            Fig4Local::Reader(fig1::ReaderLocal::initial())
        }
    }

    fn step(&self, pid: usize, local: &mut Fig4Local, mem: &mut MemAccess<'_>) -> StepEvent {
        match local {
            Fig4Local::Writer(w) => self.step_writer(pid, w, mem),
            Fig4Local::Reader(r) => fig1::step_reader(&self.vars, r, mem),
        }
    }

    fn phase(&self, _pid: usize, local: &Fig4Local) -> Phase {
        match local {
            Fig4Local::Writer(w) => Self::writer_phase(w),
            Fig4Local::Reader(r) => fig1::reader_phase(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};
    use crate::runner::{RandomSched, RoundRobin, Runner, Scheduler, WeightedSched};

    #[test]
    fn solo_writer_completes() {
        let alg = Fig4::new(1, 0);
        let mut r = Runner::new(alg, FreeModel, 4);
        let mut sched = RoundRobin::default();
        r.run(&mut sched, 10_000);
        assert!(r.quiescent(), "solo writer deadlocked (W-token init?)");
        assert!(r.violations().is_empty());
    }

    #[test]
    fn two_writers_hand_off() {
        let alg = Fig4::new(2, 0);
        let mut r = Runner::new(alg, FreeModel, 4);
        let mut sched = RoundRobin::default();
        r.run(&mut sched, 50_000);
        assert!(r.quiescent());
        assert!(r.violations().is_empty());
        assert_eq!(r.finished_attempts().len(), 8);
    }

    #[test]
    fn mixed_runs_safe_and_live() {
        for seed in 0..15 {
            let alg = Fig4::new(2, 3);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 1_000_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: did not quiesce");
        }
    }

    #[test]
    fn writers_survive_reader_storm() {
        // WP liveness smoke: readers step 20× as often; writers must still
        // finish their budget.
        for seed in 0..5 {
            let alg = Fig4::new(2, 4);
            let n = alg.processes();
            let mut weights = vec![1.0; n];
            for w in weights.iter_mut().skip(2) {
                *w = 20.0;
            }
            let mut r = Runner::new(alg, FreeModel, 2);
            // Readers get unbounded attempts; writers 2 each.
            for p in 2..n {
                r.set_budget(p, u32::MAX);
            }
            let mut sched = WeightedSched::new(seed, weights);
            let mut writer_done = false;
            for _ in 0..2_000_000 {
                let runnable = r.runnable();
                if runnable.is_empty() {
                    break;
                }
                let pid = sched.next(&runnable);
                r.step(pid);
                let writers_finished =
                    r.finished_attempts().iter().filter(|a| a.role_writer).count();
                if writers_finished >= 4 {
                    writer_done = true;
                    break;
                }
            }
            assert!(writer_done, "seed {seed}: writers starved under read storm (WP violated)");
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
        }
    }

    #[test]
    fn rmr_per_attempt_constant_under_cc() {
        let mut maxes = Vec::new();
        for readers in [2usize, 8, 16, 40] {
            let alg = Fig4::new(2, readers);
            let n = alg.processes();
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n, vars), 3);
            let mut sched = RandomSched::new(17);
            r.run(&mut sched, 2_000_000);
            assert!(r.quiescent());
            let max = r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
            maxes.push(max);
        }
        assert!(maxes.iter().all(|&m| m <= 30), "RMR bound is not constant: {maxes:?}");
        let last = maxes.len() - 1;
        assert!(
            maxes[last] <= maxes[last - 1] + 3,
            "no plateau — still growing at large n: {maxes:?}"
        );
    }
}
