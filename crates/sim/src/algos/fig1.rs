//! Line-level encoding of Figure 1 (SWMR, writer priority + starvation
//! freedom).
//!
//! Program counters carry the paper's line numbers; each step performs the
//! single shared-memory operation of that line. The writer is process 0,
//! readers are processes `1..=n`. The `Fig1Vars` / step functions are also
//! reused by the Figure 3 and Figure 4 encodings, exactly as the paper
//! reuses `SW-Write-try` / `SW-waiting-room`.

use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout, VarId};

/// Bit 63 of a `C[d]`/`EC` cell: the `writer-waiting` component.
pub const WRITER_BIT: u64 = 1 << 63;
/// The paper's `\[1, 1\]` test value (writer waiting, one reader registered).
pub const ONE_ONE: u64 = WRITER_BIT | 1;

/// Shared variables of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Vars {
    /// `D`.
    pub d: VarId,
    /// `Gate\[0\]`, `Gate\[1\]`.
    pub gates: [VarId; 2],
    /// `Permit\[0\]`, `Permit\[1\]`.
    pub permits: [VarId; 2],
    /// `ExitPermit`.
    pub exit_permit: VarId,
    /// `C\[0\]`, `C\[1\]` (packed `[writer-waiting, reader-count]`).
    pub c: [VarId; 2],
    /// `EC` (packed).
    pub ec: VarId,
}

impl Fig1Vars {
    /// Allocates the Figure 1 variables with the paper's initial values
    /// (`D = 0`, `Gate\[0\] = true`, `Gate\[1\] = false`, counters zero).
    pub fn alloc(layout: &mut MemLayout) -> Self {
        Self {
            d: layout.var("D", 0),
            gates: [layout.var("Gate[0]", 1), layout.var("Gate[1]", 0)],
            permits: [layout.var("Permit[0]", 0), layout.var("Permit[1]", 0)],
            exit_permit: layout.var("ExitPermit", 0),
            c: [layout.var("C[0]", 0), layout.var("C[1]", 0)],
            ec: layout.var("EC", 0),
        }
    }
}

/// Writer program counter (paper line about to execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WPc {
    Remainder,
    L3,
    L4,
    L5,
    L6,
    L7,
    L8,
    L9,
    L10,
    L11,
    L12,
    Cs,
    L14,
}

/// Writer local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterLocal {
    /// Program counter.
    pub pc: WPc,
    /// `prevD` (0/1).
    pub prev_d: u64,
    /// `currD` (0/1).
    pub curr_d: u64,
}

impl WriterLocal {
    /// Writer at rest.
    pub fn initial() -> Self {
        Self { pc: WPc::Remainder, prev_d: 0, curr_d: 0 }
    }

    /// Writer about to execute the waiting room (Fig. 1 line 4) from side
    /// `curr_d` — the entry point Figure 4's line 13 uses.
    pub fn at_waiting_room(curr_d: u64) -> Self {
        Self { pc: WPc::L4, prev_d: 1 - curr_d, curr_d }
    }
}

/// One step of the Figure 1 writer. Returns `Blocked` when a `wait till`
/// condition is still false.
pub fn step_writer(vars: &Fig1Vars, local: &mut WriterLocal, mem: &mut MemAccess<'_>) -> StepEvent {
    match local.pc {
        WPc::Remainder => {
            // line 2: prevD ← D, currD ← ¬prevD
            local.prev_d = mem.read(vars.d);
            local.curr_d = 1 - local.prev_d;
            local.pc = WPc::L3;
        }
        WPc::L3 => {
            // line 3: D ← currD (doorway complete)
            mem.write(vars.d, local.curr_d);
            local.pc = WPc::L4;
        }
        WPc::L4 => {
            // line 4: Permit[prevD] ← false
            mem.write(vars.permits[local.prev_d as usize], 0);
            local.pc = WPc::L5;
        }
        WPc::L5 => {
            // line 5: if (F&A(C[prevD], [1, 0]) ≠ [0, 0]) wait
            let old = mem.faa(vars.c[local.prev_d as usize], WRITER_BIT);
            local.pc = if old != 0 { WPc::L6 } else { WPc::L7 };
        }
        WPc::L6 => {
            // line 6: wait till Permit[prevD]
            if mem.read(vars.permits[local.prev_d as usize]) == 1 {
                local.pc = WPc::L7;
            } else {
                return StepEvent::Blocked;
            }
        }
        WPc::L7 => {
            // line 7: F&A(C[prevD], [-1, 0])
            mem.faa(vars.c[local.prev_d as usize], WRITER_BIT.wrapping_neg());
            local.pc = WPc::L8;
        }
        WPc::L8 => {
            // line 8: Gate[prevD] ← false
            mem.write(vars.gates[local.prev_d as usize], 0);
            local.pc = WPc::L9;
        }
        WPc::L9 => {
            // line 9: ExitPermit ← false
            mem.write(vars.exit_permit, 0);
            local.pc = WPc::L10;
        }
        WPc::L10 => {
            // line 10: if (F&A(EC, [1, 0]) ≠ [0, 0]) wait
            let old = mem.faa(vars.ec, WRITER_BIT);
            local.pc = if old != 0 { WPc::L11 } else { WPc::L12 };
        }
        WPc::L11 => {
            // line 11: wait till ExitPermit
            if mem.read(vars.exit_permit) == 1 {
                local.pc = WPc::L12;
            } else {
                return StepEvent::Blocked;
            }
        }
        WPc::L12 => {
            // line 12: F&A(EC, [-1, 0])
            mem.faa(vars.ec, WRITER_BIT.wrapping_neg());
            local.pc = WPc::Cs;
        }
        WPc::Cs => {
            // line 13: CRITICAL SECTION (no shared access)
            local.pc = WPc::L14;
        }
        WPc::L14 => {
            // line 14: Gate[D] ← true (D = currD)
            mem.write(vars.gates[local.curr_d as usize], 1);
            local.pc = WPc::Remainder;
        }
    }
    StepEvent::Progress
}

/// Phase of a Figure 1 writer.
pub fn writer_phase(local: &WriterLocal) -> Phase {
    match local.pc {
        WPc::Remainder => Phase::Remainder,
        WPc::L3 => Phase::Doorway,
        WPc::L4
        | WPc::L5
        | WPc::L6
        | WPc::L7
        | WPc::L8
        | WPc::L9
        | WPc::L10
        | WPc::L11
        | WPc::L12 => Phase::WaitingRoom,
        WPc::Cs => Phase::Cs,
        WPc::L14 => Phase::Exit,
    }
}

/// Reader program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RPc {
    Remainder,
    L17,
    L18,
    L20,
    L21,
    L22,
    L23,
    L24,
    Cs,
    L26,
    L27,
    L28,
    L29,
    L30,
}

/// Reader local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderLocal {
    /// Program counter.
    pub pc: RPc,
    /// `d`.
    pub d: u64,
    /// `d′`.
    pub d2: u64,
}

impl ReaderLocal {
    /// Reader at rest.
    pub fn initial() -> Self {
        Self { pc: RPc::Remainder, d: 0, d2: 0 }
    }
}

/// One step of the Figure 1 reader.
pub fn step_reader(vars: &Fig1Vars, local: &mut ReaderLocal, mem: &mut MemAccess<'_>) -> StepEvent {
    match local.pc {
        RPc::Remainder => {
            // line 16: d ← D
            local.d = mem.read(vars.d);
            local.pc = RPc::L17;
        }
        RPc::L17 => {
            // line 17: F&A(C[d], [0, 1])
            mem.faa(vars.c[local.d as usize], 1);
            local.pc = RPc::L18;
        }
        RPc::L18 => {
            // lines 18–19: d′ ← D; if (d ≠ d′)
            local.d2 = mem.read(vars.d);
            local.pc = if local.d != local.d2 { RPc::L20 } else { RPc::L24 };
        }
        RPc::L20 => {
            // line 20: F&A(C[d′], [0, 1])
            mem.faa(vars.c[local.d2 as usize], 1);
            local.pc = RPc::L21;
        }
        RPc::L21 => {
            // line 21: d ← D
            local.d = mem.read(vars.d);
            local.pc = RPc::L22;
        }
        RPc::L22 => {
            // line 22: if (F&A(C[d̄], [0, -1]) = [1, 1])
            let other = (1 - local.d) as usize;
            let old = mem.faa(vars.c[other], 1u64.wrapping_neg());
            local.pc = if old == ONE_ONE { RPc::L23 } else { RPc::L24 };
        }
        RPc::L23 => {
            // line 23: Permit[d̄] ← true
            mem.write(vars.permits[(1 - local.d) as usize], 1);
            local.pc = RPc::L24;
        }
        RPc::L24 => {
            // line 24: wait till Gate[d]
            if mem.read(vars.gates[local.d as usize]) == 1 {
                local.pc = RPc::Cs;
            } else {
                return StepEvent::Blocked;
            }
        }
        RPc::Cs => {
            // line 25: CRITICAL SECTION
            local.pc = RPc::L26;
        }
        RPc::L26 => {
            // line 26: F&A(EC, [0, 1])
            mem.faa(vars.ec, 1);
            local.pc = RPc::L27;
        }
        RPc::L27 => {
            // line 27: if (F&A(C[d], [0, -1]) = [1, 1])
            let old = mem.faa(vars.c[local.d as usize], 1u64.wrapping_neg());
            local.pc = if old == ONE_ONE { RPc::L28 } else { RPc::L29 };
        }
        RPc::L28 => {
            // line 28: Permit[d] ← true
            mem.write(vars.permits[local.d as usize], 1);
            local.pc = RPc::L29;
        }
        RPc::L29 => {
            // line 29: if (F&A(EC, [0, -1]) = [1, 1])
            let old = mem.faa(vars.ec, 1u64.wrapping_neg());
            local.pc = if old == ONE_ONE { RPc::L30 } else { RPc::Remainder };
        }
        RPc::L30 => {
            // line 30: ExitPermit ← true
            mem.write(vars.exit_permit, 1);
            local.pc = RPc::Remainder;
        }
    }
    StepEvent::Progress
}

/// Phase of a Figure 1 reader.
pub fn reader_phase(local: &ReaderLocal) -> Phase {
    match local.pc {
        RPc::Remainder => Phase::Remainder,
        RPc::L17 | RPc::L18 | RPc::L20 | RPc::L21 | RPc::L22 | RPc::L23 => Phase::Doorway,
        RPc::L24 => Phase::WaitingRoom,
        RPc::Cs => Phase::Cs,
        RPc::L26 | RPc::L27 | RPc::L28 | RPc::L29 | RPc::L30 => Phase::Exit,
    }
}

/// Per-process local state of the [`Fig1`] machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig1Local {
    /// The single writer (process 0).
    Writer(WriterLocal),
    /// A reader.
    Reader(ReaderLocal),
}

/// The Figure 1 machine: process 0 is the writer, processes `1..=readers`
/// are readers.
#[derive(Debug)]
pub struct Fig1 {
    layout: MemLayout,
    vars: Fig1Vars,
    readers: usize,
}

impl Fig1 {
    /// Builds the machine with `readers` reader processes.
    pub fn new(readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let vars = Fig1Vars::alloc(&mut layout);
        Self { layout, vars, readers }
    }

    /// The shared-variable ids (used by the invariant checkers).
    pub fn vars(&self) -> &Fig1Vars {
        &self.vars
    }
}

impl Algorithm for Fig1 {
    type Local = Fig1Local;

    fn name(&self) -> &'static str {
        "fig1-swmr-writer-priority"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.readers + 1
    }

    fn role(&self, pid: usize) -> Role {
        if pid == 0 {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, pid: usize) -> Fig1Local {
        if pid == 0 {
            Fig1Local::Writer(WriterLocal::initial())
        } else {
            Fig1Local::Reader(ReaderLocal::initial())
        }
    }

    fn step(&self, _pid: usize, local: &mut Fig1Local, mem: &mut MemAccess<'_>) -> StepEvent {
        match local {
            Fig1Local::Writer(w) => step_writer(&self.vars, w, mem),
            Fig1Local::Reader(r) => step_reader(&self.vars, r, mem),
        }
    }

    fn phase(&self, _pid: usize, local: &Fig1Local) -> Phase {
        match local {
            Fig1Local::Writer(w) => writer_phase(w),
            Fig1Local::Reader(r) => reader_phase(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};
    use crate::runner::{Config, RandomSched, RoundRobin, Runner};

    #[test]
    fn solo_writer_completes_in_bounded_steps() {
        let alg = Fig1::new(0);
        let mut r = Runner::new(alg, FreeModel, 3);
        let mut sched = RoundRobin::default();
        r.run(&mut sched, 1000);
        assert!(r.quiescent(), "solo writer should finish 3 attempts");
        assert!(r.violations().is_empty());
        assert_eq!(r.finished_attempts().len(), 3);
        for a in r.finished_attempts() {
            assert!(a.try_steps <= 12, "writer try section must be bounded solo");
        }
    }

    #[test]
    fn solo_reader_satisfies_concurrent_entering() {
        let alg = Fig1::new(3);
        let mut r = Runner::new(alg, FreeModel, 5);
        r.set_budget(0, 0); // writer stays in the remainder section
        let mut sched = RandomSched::new(11);
        r.run(&mut sched, 10_000);
        assert!(r.quiescent());
        for a in r.finished_attempts() {
            // P5: readers enter within a bounded number of their own steps
            // when no writer is active (doorway ≤ 7 lines + 1 gate check).
            assert!(a.try_steps <= 8, "concurrent entering violated: {a:?}");
        }
    }

    #[test]
    fn mixed_run_has_no_exclusion_violation() {
        for seed in 0..20 {
            let alg = Fig1::new(3);
            let mut r = Runner::new(alg, FreeModel, 4);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 100_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: starvation within budget");
        }
    }

    #[test]
    fn rmr_per_attempt_is_constant_under_cc() {
        // The headline claim at machine level: max RMRs per attempt is
        // bounded by a constant independent of the number of readers.
        // (Small n samples fewer interleavings, so the observed max rises
        // toward the worst-case constant before plateauing.)
        let mut maxes = Vec::new();
        for readers in [1usize, 4, 16, 48] {
            let n = readers + 1;
            let alg = Fig1::new(readers);
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n, vars), 5);
            let mut sched = RandomSched::new(3);
            r.run(&mut sched, 2_000_000);
            assert!(r.quiescent());
            let max = r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
            maxes.push(max);
        }
        assert!(maxes.iter().all(|&m| m <= 20), "RMR bound is not constant: {maxes:?}");
        let last = maxes.len() - 1;
        assert!(
            maxes[last] <= maxes[last - 1] + 2,
            "no plateau — still growing at large n: {maxes:?}"
        );
    }

    #[test]
    fn exit_section_is_bounded() {
        for seed in 0..10 {
            let alg = Fig1::new(4);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 100_000);
            for a in r.finished_attempts() {
                assert!(a.exit_steps <= 5, "P2 violated: {a:?}");
            }
        }
    }

    #[test]
    fn initial_config_matches_paper() {
        let alg = Fig1::new(2);
        let cfg = Config::initial(&alg);
        let v = alg.vars();
        assert_eq!(cfg.cells[v.d.index()], 0);
        assert_eq!(cfg.cells[v.gates[0].index()], 1);
        assert_eq!(cfg.cells[v.gates[1].index()], 0);
    }
}
