//! Line-level encoding of the Figure 3 transformation `T`: writers
//! serialize through Anderson's lock `M` and then run the single-writer
//! writer protocol; readers run the single-writer reader protocol
//! unchanged.
//!
//! Two instantiations, matching Theorems 3 and 4:
//!
//! * [`Fig3Sf`] — `T` over Figure 1 (starvation free, no priority);
//! * [`Fig3Rp`] — `T` over Figure 2 (reader priority).
//!
//! Process ids: `0..writers` are writers, `writers..writers+readers` are
//! readers.

use super::anderson::AndersonVars;
use super::{fig1, fig2};
use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout};

/// Writer-side wrapper state around an inner single-writer protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MPc<Inner> {
    /// In the remainder section (next step draws the `M` ticket — `T`'s
    /// bounded doorway).
    Remainder,
    /// Spinning on the Anderson slot for `ticket`.
    Wait {
        /// Our `M` ticket.
        ticket: u64,
    },
    /// Holding `M`, running the inner single-writer protocol.
    Inner {
        /// Our `M` ticket (needed for release).
        ticket: u64,
        /// Inner writer state.
        inner: Inner,
    },
    /// Releasing `M`: closing our own slot.
    Rel1 {
        /// Our `M` ticket.
        ticket: u64,
    },
    /// Releasing `M`: opening the successor's slot.
    Rel2 {
        /// Our `M` ticket.
        ticket: u64,
    },
}

macro_rules! fig3_machine {
    ($name:ident, $docname:literal, $inner_mod:ident, $inner_vars:ty,
     $local:ident, $strname:literal, $passes_pid:tt) => {
        /// Per-process local state.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $local {
            /// A writer (wrapped in the `M` protocol).
            Writer(MPc<$inner_mod::WriterLocal>),
            /// A reader (inner protocol, unchanged).
            Reader($inner_mod::ReaderLocal),
        }

        #[doc = $docname]
        #[derive(Debug)]
        pub struct $name {
            layout: MemLayout,
            vars: $inner_vars,
            m: AndersonVars,
            writers: usize,
            readers: usize,
        }

        impl $name {
            /// Builds the machine with `writers` writer and `readers`
            /// reader processes.
            pub fn new(writers: usize, readers: usize) -> Self {
                assert!(writers > 0, "need at least one writer");
                let mut layout = MemLayout::new();
                let vars = <$inner_vars>::alloc(&mut layout);
                let m = AndersonVars::alloc(&mut layout, writers);
                Self { layout, vars, m, writers, readers }
            }

            /// The inner single-writer shared variables.
            pub fn vars(&self) -> &$inner_vars {
                &self.vars
            }
        }

        impl Algorithm for $name {
            type Local = $local;

            fn name(&self) -> &'static str {
                $strname
            }

            fn layout(&self) -> &MemLayout {
                &self.layout
            }

            fn processes(&self) -> usize {
                self.writers + self.readers
            }

            fn role(&self, pid: usize) -> Role {
                if pid < self.writers {
                    Role::Writer
                } else {
                    Role::Reader
                }
            }

            fn initial_local(&self, pid: usize) -> $local {
                if pid < self.writers {
                    $local::Writer(MPc::Remainder)
                } else {
                    $local::Reader($inner_mod::ReaderLocal::initial())
                }
            }

            fn step(
                &self,
                pid: usize,
                local: &mut Self::Local,
                mem: &mut MemAccess<'_>,
            ) -> StepEvent {
                match local {
                    $local::Reader(r) => {
                        fig3_machine!(@step_reader $passes_pid, self, pid, r, mem)
                    }
                    $local::Writer(w) => {
                        match w {
                            MPc::Remainder => {
                                // T line 2 (doorway of M): draw the ticket.
                                let ticket = self.m.take_ticket(mem);
                                *w = MPc::Wait { ticket };
                            }
                            MPc::Wait { ticket } => {
                                // T line 2 (waiting room of M).
                                if self.m.poll(*ticket, mem) {
                                    *w = MPc::Inner {
                                        ticket: *ticket,
                                        inner: $inner_mod::WriterLocal::initial(),
                                    };
                                } else {
                                    return StepEvent::Blocked;
                                }
                            }
                            MPc::Inner { ticket, inner } => {
                                // T lines 3–5: the inner writer protocol.
                                let ev = fig3_machine!(
                                    @step_writer $passes_pid, self, pid, inner, mem);
                                if inner.pc == $inner_mod::WPc::Remainder {
                                    // Inner exit done → release M (T line 6).
                                    *w = MPc::Rel1 { ticket: *ticket };
                                }
                                if ev == StepEvent::Blocked {
                                    return StepEvent::Blocked;
                                }
                            }
                            MPc::Rel1 { ticket } => {
                                self.m.close_own(*ticket, mem);
                                *w = MPc::Rel2 { ticket: *ticket };
                            }
                            MPc::Rel2 { ticket } => {
                                self.m.open_next(*ticket, mem);
                                *w = MPc::Remainder;
                            }
                        }
                        StepEvent::Progress
                    }
                }
            }

            fn phase(&self, _pid: usize, local: &Self::Local) -> Phase {
                match local {
                    $local::Reader(r) => $inner_mod::reader_phase(r),
                    $local::Writer(w) => match w {
                        MPc::Remainder => Phase::Remainder,
                        MPc::Wait { .. } => Phase::WaitingRoom,
                        MPc::Inner { inner, .. } => match $inner_mod::writer_phase(inner) {
                            // From the combined lock's perspective the
                            // inner doorway is still inside the try section;
                            // the combined doorway was M's ticket.
                            Phase::Doorway | Phase::Remainder => Phase::WaitingRoom,
                            p => p,
                        },
                        MPc::Rel1 { .. } | MPc::Rel2 { .. } => Phase::Exit,
                    },
                }
            }
        }
    };
    (@step_reader no_pid, $self:ident, $pid:ident, $r:ident, $mem:ident) => {{
        let _ = $pid;
        fig1::step_reader(&$self.vars, $r, $mem)
    }};
    (@step_reader with_pid, $self:ident, $pid:ident, $r:ident, $mem:ident) => {
        fig2::step_reader(&$self.vars, $pid, $r, $mem)
    };
    (@step_writer no_pid, $self:ident, $pid:ident, $w:ident, $mem:ident) => {{
        let _ = $pid;
        fig1::step_writer(&$self.vars, $w, $mem)
    }};
    (@step_writer with_pid, $self:ident, $pid:ident, $w:ident, $mem:ident) => {
        fig2::step_writer(&$self.vars, $pid, $w, $mem)
    };
}

fig3_machine!(
    Fig3Sf,
    "Figure 3 over Figure 1: multi-writer multi-reader, starvation free, no priority (Theorem 3).",
    fig1,
    fig1::Fig1Vars,
    Fig3SfLocal,
    "fig3-mwmr-starvation-free",
    no_pid
);

fig3_machine!(
    Fig3Rp,
    "Figure 3 over Figure 2: multi-writer multi-reader, reader priority (Theorem 4).",
    fig2,
    fig2::Fig2Vars,
    Fig3RpLocal,
    "fig3-mwmr-reader-priority",
    with_pid
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};
    use crate::runner::{RandomSched, RoundRobin, Runner};

    #[test]
    fn sf_two_writers_alternate_safely() {
        let alg = Fig3Sf::new(2, 0);
        let mut r = Runner::new(alg, FreeModel, 3);
        let mut sched = RoundRobin::default();
        r.run(&mut sched, 10_000);
        assert!(r.quiescent());
        assert!(r.violations().is_empty());
        assert_eq!(r.finished_attempts().len(), 6);
    }

    #[test]
    fn sf_mixed_runs_safe_and_live() {
        for seed in 0..15 {
            let alg = Fig3Sf::new(2, 3);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 500_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: starvation within budget");
        }
    }

    #[test]
    fn rp_mixed_runs_safe_and_live() {
        for seed in 0..15 {
            let alg = Fig3Rp::new(2, 3);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 500_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: did not quiesce");
        }
    }

    #[test]
    fn sf_fcfs_among_writers() {
        use crate::props::check_fcfs_writers;
        for seed in 0..10 {
            let alg = Fig3Sf::new(3, 2);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 500_000);
            assert!(r.quiescent());
            check_fcfs_writers(r.finished_attempts())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn both_have_constant_rmr_shape() {
        for readers in [2usize, 8] {
            let alg = Fig3Sf::new(2, readers);
            let n = alg.processes();
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n, vars), 3);
            let mut sched = RandomSched::new(1);
            r.run(&mut sched, 500_000);
            assert!(r.quiescent());
            let max = r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
            assert!(max < 40, "suspiciously high RMR count {max} for {readers} readers");
        }
    }
}
