//! Machine encodings of the baseline reader-writer locks, for the RMR
//! comparison sweeps (experiments E7/E8). Mirrors `rmr-baselines`.

use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout, VarId};

// ---------------------------------------------------------------------
// Centralized (Courtois et al. 1971): reader count behind a TTAS mutex.
// ---------------------------------------------------------------------

/// Local state for [`Centralized`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CentralizedLocal {
    Remainder,
    // Readers: acquire count mutex, bump, maybe take resource, release.
    RSpinM,
    RSwapM,
    RIncCount { acquired_resource: bool },
    RTakeResSpin,
    RTakeResSwap,
    RRelM1 { took: bool },
    RCs,
    // Reader exit: mutex, decrement, maybe release resource, release mutex.
    RXSpinM,
    RXSwapM,
    RXDecCount,
    RXRelRes,
    RXRelM,
    // Writers: plain TTAS on the resource.
    WSpinRes,
    WSwapRes,
    WCs,
    WRelRes,
}

/// The classic centralized reader-writer lock (reader preference): every
/// reader entry and exit serializes through one mutex word — no concurrent
/// entering under contention, O(n) RMRs per batch.
#[derive(Debug)]
pub struct Centralized {
    layout: MemLayout,
    /// TTAS mutex protecting `count`.
    m: VarId,
    /// Reader count.
    count: VarId,
    /// TTAS resource lock (held by the writer or the reader group).
    res: VarId,
    writers: usize,
    readers: usize,
}

impl Centralized {
    /// Builds the machine (`0..writers` writers, rest readers).
    pub fn new(writers: usize, readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let m = layout.var("mutex", 0);
        let count = layout.var("readcount", 0);
        let res = layout.var("resource", 0);
        Self { layout, m, count, res, writers, readers }
    }
}

impl Algorithm for Centralized {
    type Local = CentralizedLocal;

    fn name(&self) -> &'static str {
        "baseline-centralized"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.writers + self.readers
    }

    fn role(&self, pid: usize) -> Role {
        if pid < self.writers {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, _pid: usize) -> CentralizedLocal {
        CentralizedLocal::Remainder
    }

    fn step(&self, pid: usize, l: &mut CentralizedLocal, mem: &mut MemAccess<'_>) -> StepEvent {
        use CentralizedLocal::*;
        match *l {
            Remainder => {
                *l = if self.role(pid) == Role::Writer { WSpinRes } else { RSpinM };
                // Entering the try section costs no operation by itself;
                // fall through on the next step.
                return StepEvent::Progress;
            }
            // ---- reader entry ----
            RSpinM => {
                if mem.read(self.m) == 0 {
                    *l = RSwapM;
                } else {
                    return StepEvent::Blocked;
                }
            }
            RSwapM => {
                if mem.cas(self.m, 0, 1) {
                    *l = RIncCount { acquired_resource: false };
                } else {
                    *l = RSpinM;
                }
            }
            RIncCount { .. } => {
                let old = mem.faa(self.count, 1);
                *l = if old == 0 { RTakeResSpin } else { RRelM1 { took: false } };
            }
            RTakeResSpin => {
                if mem.read(self.res) == 0 {
                    *l = RTakeResSwap;
                } else {
                    return StepEvent::Blocked;
                }
            }
            RTakeResSwap => {
                if mem.cas(self.res, 0, 1) {
                    *l = RRelM1 { took: true };
                } else {
                    *l = RTakeResSpin;
                }
            }
            RRelM1 { .. } => {
                mem.write(self.m, 0);
                *l = RCs;
            }
            RCs => {
                *l = RXSpinM;
            }
            // ---- reader exit ----
            RXSpinM => {
                if mem.read(self.m) == 0 {
                    *l = RXSwapM;
                } else {
                    return StepEvent::Blocked;
                }
            }
            RXSwapM => {
                if mem.cas(self.m, 0, 1) {
                    *l = RXDecCount;
                } else {
                    *l = RXSpinM;
                }
            }
            RXDecCount => {
                let old = mem.faa(self.count, 1u64.wrapping_neg());
                *l = if old == 1 { RXRelRes } else { RXRelM };
            }
            RXRelRes => {
                mem.write(self.res, 0);
                *l = RXRelM;
            }
            RXRelM => {
                mem.write(self.m, 0);
                *l = Remainder;
            }
            // ---- writer ----
            WSpinRes => {
                if mem.read(self.res) == 0 {
                    *l = WSwapRes;
                } else {
                    return StepEvent::Blocked;
                }
            }
            WSwapRes => {
                if mem.cas(self.res, 0, 1) {
                    *l = WCs;
                } else {
                    *l = WSpinRes;
                }
            }
            WCs => {
                *l = WRelRes;
            }
            WRelRes => {
                mem.write(self.res, 0);
                *l = Remainder;
            }
        }
        StepEvent::Progress
    }

    fn phase(&self, _pid: usize, l: &CentralizedLocal) -> Phase {
        use CentralizedLocal::*;
        match l {
            Remainder => Phase::Remainder,
            RSpinM | RSwapM | RIncCount { .. } | RTakeResSpin | RTakeResSwap | RRelM1 { .. } => {
                Phase::WaitingRoom
            }
            RCs | WCs => Phase::Cs,
            RXSpinM | RXSwapM | RXDecCount | RXRelRes | RXRelM | WRelRes => Phase::Exit,
            WSpinRes | WSwapRes => Phase::WaitingRoom,
        }
    }
}

// ---------------------------------------------------------------------
// Task-fair ticket RW lock (everyone spins on one grants word).
// ---------------------------------------------------------------------

const READ_GRANT_UNIT: u64 = 1 << 32;

/// Local state for [`TicketRw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TicketRwLocal {
    Remainder,
    TakeTicket,
    RWaitGrant { ticket: u32 },
    RBumpRead,
    RCs,
    RExit,
    WWaitGrant { ticket: u32 },
    WCs,
    WExit,
}

/// Task-fair ticket reader-writer lock: FIFO service, all waiters spin on
/// the shared grant word → O(n) RMRs per handoff in the CC model.
#[derive(Debug)]
pub struct TicketRw {
    layout: MemLayout,
    users: VarId,
    grants: VarId,
    writers: usize,
    readers: usize,
}

impl TicketRw {
    /// Builds the machine (`0..writers` writers, rest readers).
    pub fn new(writers: usize, readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let users = layout.var("users", 0);
        let grants = layout.var("grants", 0);
        Self { layout, users, grants, writers, readers }
    }
}

impl Algorithm for TicketRw {
    type Local = TicketRwLocal;

    fn name(&self) -> &'static str {
        "baseline-ticket-rw"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.writers + self.readers
    }

    fn role(&self, pid: usize) -> Role {
        if pid < self.writers {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, _pid: usize) -> TicketRwLocal {
        TicketRwLocal::Remainder
    }

    fn step(&self, pid: usize, l: &mut TicketRwLocal, mem: &mut MemAccess<'_>) -> StepEvent {
        use TicketRwLocal::*;
        match *l {
            Remainder => {
                *l = TakeTicket;
            }
            TakeTicket => {
                let t = mem.faa(self.users, 1) as u32;
                *l = if self.role(pid) == Role::Writer {
                    WWaitGrant { ticket: t }
                } else {
                    RWaitGrant { ticket: t }
                };
            }
            RWaitGrant { ticket } => {
                let g = mem.read(self.grants);
                if (g >> 32) as u32 == ticket {
                    *l = RBumpRead;
                } else {
                    return StepEvent::Blocked;
                }
            }
            RBumpRead => {
                mem.faa(self.grants, READ_GRANT_UNIT);
                *l = RCs;
            }
            RCs => {
                *l = RExit;
            }
            RExit => {
                mem.faa(self.grants, 1);
                *l = Remainder;
            }
            WWaitGrant { ticket } => {
                let g = mem.read(self.grants);
                if g as u32 == ticket {
                    *l = WCs;
                } else {
                    return StepEvent::Blocked;
                }
            }
            WCs => {
                *l = WExit;
            }
            WExit => {
                mem.faa(self.grants, READ_GRANT_UNIT + 1);
                *l = Remainder;
            }
        }
        StepEvent::Progress
    }

    fn phase(&self, _pid: usize, l: &TicketRwLocal) -> Phase {
        use TicketRwLocal::*;
        match l {
            Remainder => Phase::Remainder,
            TakeTicket => Phase::Doorway,
            RWaitGrant { .. } | WWaitGrant { .. } | RBumpRead => Phase::WaitingRoom,
            RCs | WCs => Phase::Cs,
            RExit | WExit => Phase::Exit,
        }
    }
}

// ---------------------------------------------------------------------
// Counting-tree RW lock (Θ(log n) reader RMRs — the Danek–Hadzilacos
// complexity-class stand-in).
// ---------------------------------------------------------------------

/// Local state for [`Tournament`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TournamentLocal {
    Remainder,
    /// Reader climbing: next tree node index to increment.
    RClimb {
        node: u32,
    },
    RCheckWriter,
    /// Reader retreating after seeing the writer flag.
    RDescend {
        node: u32,
    },
    RPark,
    RCs,
    /// Reader exit: descending.
    RExit {
        node: u32,
    },
    // Writer: TTAS mutex, flag, drain root.
    WSpinM,
    WSwapM,
    WSetFlag,
    WDrainRoot,
    WCs,
    WClearFlag,
    WRelM,
}

/// Counting-tree reader-writer lock: readers pay one fetch&add per tree
/// level (Θ(log n) RMRs per attempt).
#[derive(Debug)]
pub struct Tournament {
    layout: MemLayout,
    /// Heap-indexed counters; node 1 is the root.
    nodes: Vec<VarId>,
    leaf_base: usize,
    m: VarId,
    writer_present: VarId,
    writers: usize,
    readers: usize,
}

impl Tournament {
    /// Builds the machine (`0..writers` writers, rest readers).
    pub fn new(writers: usize, readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let leaf_base = (writers + readers).next_power_of_two().max(2);
        let nodes = layout.array("node", 2 * leaf_base, 0);
        let m = layout.var("wmutex", 0);
        let writer_present = layout.var("writer_present", 0);
        Self { layout, nodes, leaf_base, m, writer_present, writers, readers }
    }

    fn leaf_of(&self, pid: usize) -> u32 {
        (self.leaf_base + pid % self.leaf_base) as u32
    }

    /// Tree levels a reader touches per climb.
    pub fn levels(&self) -> u32 {
        self.leaf_base.trailing_zeros() + 1
    }
}

impl Algorithm for Tournament {
    type Local = TournamentLocal;

    fn name(&self) -> &'static str {
        "baseline-tournament-tree"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.writers + self.readers
    }

    fn role(&self, pid: usize) -> Role {
        if pid < self.writers {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, _pid: usize) -> TournamentLocal {
        TournamentLocal::Remainder
    }

    fn step(&self, pid: usize, l: &mut TournamentLocal, mem: &mut MemAccess<'_>) -> StepEvent {
        use TournamentLocal::*;
        match *l {
            Remainder => {
                *l = if self.role(pid) == Role::Writer {
                    WSpinM
                } else {
                    RClimb { node: self.leaf_of(pid) }
                };
            }
            RClimb { node } => {
                mem.faa(self.nodes[node as usize], 1);
                *l = if node >= 2 { RClimb { node: node / 2 } } else { RCheckWriter };
            }
            RCheckWriter => {
                if mem.read(self.writer_present) == 0 {
                    *l = RCs;
                } else {
                    *l = RDescend { node: self.leaf_of(pid) };
                }
            }
            RDescend { node } => {
                mem.faa(self.nodes[node as usize], 1u64.wrapping_neg());
                *l = if node >= 2 { RDescend { node: node / 2 } } else { RPark };
            }
            RPark => {
                if mem.read(self.writer_present) == 0 {
                    *l = RClimb { node: self.leaf_of(pid) };
                } else {
                    return StepEvent::Blocked;
                }
            }
            RCs => {
                *l = RExit { node: self.leaf_of(pid) };
            }
            RExit { node } => {
                mem.faa(self.nodes[node as usize], 1u64.wrapping_neg());
                *l = if node >= 2 { RExit { node: node / 2 } } else { Remainder };
            }
            WSpinM => {
                if mem.read(self.m) == 0 {
                    *l = WSwapM;
                } else {
                    return StepEvent::Blocked;
                }
            }
            WSwapM => {
                *l = if mem.cas(self.m, 0, 1) { WSetFlag } else { WSpinM };
            }
            WSetFlag => {
                mem.write(self.writer_present, 1);
                *l = WDrainRoot;
            }
            WDrainRoot => {
                if mem.read(self.nodes[1]) == 0 {
                    *l = WCs;
                } else {
                    return StepEvent::Blocked;
                }
            }
            WCs => {
                *l = WClearFlag;
            }
            WClearFlag => {
                mem.write(self.writer_present, 0);
                *l = WRelM;
            }
            WRelM => {
                mem.write(self.m, 0);
                *l = Remainder;
            }
        }
        StepEvent::Progress
    }

    fn phase(&self, _pid: usize, l: &TournamentLocal) -> Phase {
        use TournamentLocal::*;
        match l {
            Remainder => Phase::Remainder,
            RClimb { .. }
            | RCheckWriter
            | RDescend { .. }
            | RPark
            | WSpinM
            | WSwapM
            | WSetFlag
            | WDrainRoot => Phase::WaitingRoom,
            RCs | WCs => Phase::Cs,
            RExit { .. } | WClearFlag | WRelM => Phase::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};
    use crate::runner::{RandomSched, Runner};

    fn safety_and_liveness<A: Algorithm>(make: impl Fn() -> A, seeds: u64, steps: usize) {
        for seed in 0..seeds {
            let alg = make();
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, steps);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: did not quiesce");
        }
    }

    #[test]
    fn centralized_safe_and_live() {
        safety_and_liveness(|| Centralized::new(2, 3), 15, 1_000_000);
    }

    #[test]
    fn ticket_rw_safe_and_live() {
        safety_and_liveness(|| TicketRw::new(2, 3), 15, 1_000_000);
    }

    #[test]
    fn tournament_safe_and_live() {
        safety_and_liveness(|| Tournament::new(2, 3), 15, 1_000_000);
    }

    #[test]
    fn tournament_reader_rmrs_grow_with_n() {
        // The log n separation: reader RMRs under CC must grow as the tree
        // deepens (uncontended single reader, so the count is exactly the
        // climb + check + descend cost).
        let mut costs = Vec::new();
        for total in [4usize, 16, 64] {
            let alg = Tournament::new(1, total - 1);
            let n = alg.processes();
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n.min(64), vars), 1);
            // Only reader 1 runs.
            for p in 0..n {
                if p != 1 {
                    r.set_budget(p, 0);
                }
            }
            let mut sched = RandomSched::new(1);
            r.run(&mut sched, 100_000);
            assert!(r.quiescent());
            costs.push(r.finished_attempts()[0].rmrs);
        }
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "expected growth: {costs:?}");
    }

    #[test]
    fn centralized_reader_batch_rmrs_grow_with_n() {
        // O(n) class: total RMRs for n readers entering together grows
        // superlinearly vs. the per-attempt constant of Fig. 1.
        let mut per_attempt_max = Vec::new();
        for readers in [2usize, 8] {
            let alg = Centralized::new(1, readers);
            let n = alg.processes();
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n, vars), 2);
            r.set_budget(0, 0); // no writer: measure reader-side serialization
            let mut sched = RandomSched::new(5);
            r.run(&mut sched, 1_000_000);
            assert!(r.quiescent());
            let max = r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
            per_attempt_max.push(max);
        }
        assert!(
            per_attempt_max[1] > per_attempt_max[0],
            "centralized lock should show contention growth: {per_attempt_max:?}"
        );
    }
}
