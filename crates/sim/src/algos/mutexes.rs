//! Machine encodings of the classic mutual-exclusion locks, used to
//! validate the CC cost model against the literature's known RMR results:
//!
//! | lock | RMRs per acquire/release (CC) |
//! |---|---|
//! | test-and-set | unbounded under contention (every retry is remote) |
//! | test-and-test-and-set | Θ(waiters) per handoff (invalidation storm) |
//! | Anderson array lock | O(1) |
//!
//! Anderson's O(1) result is what made the paper's use of it as `M` free of
//! charge; seeing these three separate cleanly in our model is the
//! calibration that makes the E6/E7 tables trustworthy.

use super::anderson::AndersonVars;
use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout, VarId};

/// Which mutex a [`MutexMachine`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexKind {
    /// Swap in a loop (no local spinning at all).
    Tas,
    /// Read-spin, then swap.
    Ttas,
    /// Anderson's array lock.
    Anderson,
}

/// Local state for [`MutexMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MutexLocal {
    Remainder,
    // TAS
    TasTry,
    // TTAS
    TtasSpin,
    TtasSwap,
    // Anderson
    AndTicket,
    AndWait { ticket: u64 },
    // common
    Cs { ticket: u64 },
    Rel1 { ticket: u64 },
    Rel2 { ticket: u64 },
}

/// A population of processes contending on one mutex; every process is a
/// "writer" (mutual exclusion has no readers).
#[derive(Debug)]
pub struct MutexMachine {
    layout: MemLayout,
    kind: MutexKind,
    /// TAS/TTAS flag.
    flag: VarId,
    /// Anderson state (allocated for all kinds; unused by TAS/TTAS).
    anderson: AndersonVars,
    procs: usize,
}

impl MutexMachine {
    /// Builds `procs` contenders on a `kind` mutex.
    pub fn new(kind: MutexKind, procs: usize) -> Self {
        let mut layout = MemLayout::new();
        let flag = layout.var("flag", 0);
        let anderson = AndersonVars::alloc(&mut layout, procs.max(2));
        Self { layout, kind, flag, anderson, procs }
    }
}

impl Algorithm for MutexMachine {
    type Local = MutexLocal;

    fn name(&self) -> &'static str {
        match self.kind {
            MutexKind::Tas => "mutex-tas",
            MutexKind::Ttas => "mutex-ttas",
            MutexKind::Anderson => "mutex-anderson",
        }
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.procs
    }

    fn role(&self, _pid: usize) -> Role {
        Role::Writer
    }

    fn initial_local(&self, _pid: usize) -> MutexLocal {
        MutexLocal::Remainder
    }

    fn step(&self, _pid: usize, l: &mut MutexLocal, mem: &mut MemAccess<'_>) -> StepEvent {
        use MutexLocal::*;
        match *l {
            Remainder => {
                *l = match self.kind {
                    MutexKind::Tas => TasTry,
                    MutexKind::Ttas => TtasSpin,
                    MutexKind::Anderson => AndTicket,
                };
            }
            TasTry => {
                // swap(flag, 1): an Update every retry — each one a remote
                // reference, which is exactly TAS's pathology. (CAS and
                // swap are indistinguishable to the cost model.)
                if mem.cas(self.flag, 0, 1) {
                    *l = Cs { ticket: 0 };
                }
                // else: stay at TasTry; the failed attempt still progressed
                // (and paid).
            }
            TtasSpin => {
                if mem.read(self.flag) == 0 {
                    *l = TtasSwap;
                } else {
                    return StepEvent::Blocked;
                }
            }
            TtasSwap => {
                *l = if mem.cas(self.flag, 0, 1) { Cs { ticket: 0 } } else { TtasSpin };
            }
            AndTicket => {
                let t = self.anderson.take_ticket(mem);
                *l = AndWait { ticket: t };
            }
            AndWait { ticket } => {
                if self.anderson.poll(ticket, mem) {
                    *l = Cs { ticket };
                } else {
                    return StepEvent::Blocked;
                }
            }
            Cs { ticket } => {
                *l = Rel1 { ticket };
            }
            Rel1 { ticket } => match self.kind {
                MutexKind::Tas | MutexKind::Ttas => {
                    mem.write(self.flag, 0);
                    *l = Remainder;
                }
                MutexKind::Anderson => {
                    self.anderson.close_own(ticket, mem);
                    *l = Rel2 { ticket };
                }
            },
            Rel2 { ticket } => {
                self.anderson.open_next(ticket, mem);
                *l = Remainder;
            }
        }
        StepEvent::Progress
    }

    fn phase(&self, _pid: usize, l: &MutexLocal) -> Phase {
        use MutexLocal::*;
        match l {
            Remainder => Phase::Remainder,
            TasTry | TtasSpin | TtasSwap | AndWait { .. } => Phase::WaitingRoom,
            AndTicket => Phase::Doorway,
            Cs { .. } => Phase::Cs,
            Rel1 { .. } | Rel2 { .. } => Phase::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CcModel;
    use crate::runner::{RandomSched, Runner};

    fn max_rmr(kind: MutexKind, procs: usize, seed: u64) -> u64 {
        let alg = MutexMachine::new(kind, procs);
        let vars = alg.layout().len();
        let mut r = Runner::new(alg, CcModel::new(procs.min(64), vars), 3);
        r.run(&mut RandomSched::new(seed), 5_000_000);
        assert!(r.quiescent(), "{kind:?} run did not quiesce");
        assert!(r.violations().is_empty());
        r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap()
    }

    #[test]
    fn anderson_exhaustive_exclusion_and_liveness() {
        // Every interleaving of 3 contenders × 2 attempts: mutual exclusion
        // and deadlock freedom of the Anderson encoding (the lock M that
        // Figures 3 and 4 lean on).
        let alg = MutexMachine::new(MutexKind::Anderson, 3);
        let report = crate::explore::explore(&alg, &[2, 2, 2], 10_000_000, &[]);
        assert!(report.clean(), "{report}: {:?} {:?}", report.violations, report.deadlocks);
    }

    #[test]
    fn ttas_exhaustive_exclusion() {
        let alg = MutexMachine::new(MutexKind::Ttas, 3);
        let report = crate::explore::explore(&alg, &[2, 2, 2], 10_000_000, &[]);
        assert!(report.clean(), "{report}: {:?} {:?}", report.violations, report.deadlocks);
    }

    #[test]
    fn anderson_is_constant_rmr() {
        let small = max_rmr(MutexKind::Anderson, 2, 7);
        let large = max_rmr(MutexKind::Anderson, 24, 7);
        assert!(small <= 6 && large <= 6, "Anderson must be O(1): {small} vs {large}");
    }

    #[test]
    fn ttas_handoffs_scale_with_waiters() {
        let small = max_rmr(MutexKind::Ttas, 2, 7);
        let large = max_rmr(MutexKind::Ttas, 24, 7);
        assert!(
            large > small,
            "TTAS worst attempt should grow with contention: {small} vs {large}"
        );
    }

    #[test]
    fn separation_anderson_beats_ttas_at_scale() {
        let anderson = max_rmr(MutexKind::Anderson, 24, 3);
        let ttas = max_rmr(MutexKind::Ttas, 24, 3);
        assert!(anderson < ttas, "Anderson ({anderson}) must beat TTAS ({ttas}) at 24 contenders");
    }
}
