//! Deliberately broken algorithm variants.
//!
//! The paper's §3.3 and §4.3 argue that specific "subtle features" are
//! load-bearing: removing them breaks mutual exclusion. These mutants
//! remove exactly those features; the test suite (and the `property_matrix`
//! binary) demonstrates that the checker *finds* the resulting violations,
//! which validates both the paper's argument and our verification harness.
//!
//! * [`Fig1NoExitWait`] — Figure 1 without lines 9–12 (the writer does not
//!   wait for the exit section to drain). §3.3: a reader stalled at line 28
//!   can raise `Permit` for a *future* writer attempt, breaking P1.
//! * [`Fig2NoFeatureA`] — Figure 2 without reader lines 20–22 (readers do
//!   not stamp `X`). §4.3 (A): a reader can slip past a promoter that
//!   already observed `C = 0`.
//! * [`Fig2Mutant`] with [`Fig2Break::NoFeatureB`] — Figure 2 whose `Promote` CASes `true` directly
//!   over the observed value instead of stamping its own pid first.
//!   §4.3 (B): a stale promoter can wake the writer over live readers.

use super::fig1::{self, Fig1Vars};
use super::fig2::{self, Fig2Vars, X_TRUE};
use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout};

// ---------------------------------------------------------------------
// Fig. 1 without the exit-section wait (drop lines 9–12).
// ---------------------------------------------------------------------

/// Figure 1 writer that skips lines 9–12 (no `EC`/`ExitPermit` wait).
#[derive(Debug)]
pub struct Fig1NoExitWait {
    layout: MemLayout,
    vars: Fig1Vars,
    readers: usize,
}

impl Fig1NoExitWait {
    /// Builds the mutant with `readers` reader processes.
    pub fn new(readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let vars = Fig1Vars::alloc(&mut layout);
        Self { layout, vars, readers }
    }
}

impl Algorithm for Fig1NoExitWait {
    type Local = fig1::Fig1Local;

    fn name(&self) -> &'static str {
        "mutant-fig1-no-exit-wait"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.readers + 1
    }

    fn role(&self, pid: usize) -> Role {
        if pid == 0 {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, pid: usize) -> fig1::Fig1Local {
        if pid == 0 {
            fig1::Fig1Local::Writer(fig1::WriterLocal::initial())
        } else {
            fig1::Fig1Local::Reader(fig1::ReaderLocal::initial())
        }
    }

    fn step(&self, _pid: usize, local: &mut fig1::Fig1Local, mem: &mut MemAccess<'_>) -> StepEvent {
        match local {
            fig1::Fig1Local::Reader(r) => fig1::step_reader(&self.vars, r, mem),
            fig1::Fig1Local::Writer(w) => {
                // Identical to fig1::step_writer except L8 jumps straight to
                // the critical section (lines 9–12 removed).
                use fig1::WPc;
                match w.pc {
                    WPc::L8 => {
                        mem.write(self.vars.gates[w.prev_d as usize], 0);
                        w.pc = WPc::Cs; // <- mutant: skip L9–L12
                        StepEvent::Progress
                    }
                    _ => fig1::step_writer(&self.vars, w, mem),
                }
            }
        }
    }

    fn phase(&self, _pid: usize, local: &fig1::Fig1Local) -> Phase {
        match local {
            fig1::Fig1Local::Writer(w) => fig1::writer_phase(w),
            fig1::Fig1Local::Reader(r) => fig1::reader_phase(r),
        }
    }
}

// ---------------------------------------------------------------------
// Fig. 2 mutants.
// ---------------------------------------------------------------------

/// Which §4.3 feature a [`Fig2Mutant`] removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig2Break {
    /// Remove reader lines 20–22 (feature A).
    NoFeatureA,
    /// `Promote` CASes `true` directly without stamping its pid (feature B).
    NoFeatureB,
}

/// Figure 2 with one subtle feature removed.
#[derive(Debug)]
pub struct Fig2Mutant {
    layout: MemLayout,
    vars: Fig2Vars,
    readers: usize,
    which: Fig2Break,
}

/// Convenience constructor type: Figure 2 without feature A.
pub type Fig2NoFeatureA = Fig2Mutant;

impl Fig2Mutant {
    /// Builds the mutant.
    pub fn new(readers: usize, which: Fig2Break) -> Self {
        let mut layout = MemLayout::new();
        let vars = Fig2Vars::alloc(&mut layout);
        Self { layout, vars, readers, which }
    }

    /// Broken `Promote` for [`Fig2Break::NoFeatureB`]: a single CAS from
    /// the observed value straight to `true` (then raise `Permit`).
    fn step_promote_no_b(
        &self,
        pc: fig2::PromotePc,
        x_local: &mut u64,
        mem: &mut MemAccess<'_>,
    ) -> Option<fig2::PromotePc> {
        use fig2::PromotePc::*;
        match pc {
            P10 => {
                *x_local = mem.read(self.vars.x);
                if *x_local != X_TRUE {
                    Some(P13)
                } else {
                    None
                }
            }
            P12 => None, // unreachable in this mutant
            P13 => {
                if mem.read(self.vars.permit) == 0 {
                    Some(P14)
                } else {
                    None
                }
            }
            P14 => {
                if mem.read(self.vars.c) == 0 {
                    Some(P15)
                } else {
                    None
                }
            }
            P15 => {
                // Mutant: CAS(X, x, true) — no pid stamp.
                if mem.cas(self.vars.x, *x_local, X_TRUE) {
                    Some(P16)
                } else {
                    None
                }
            }
            P16 => {
                mem.write(self.vars.permit, 1);
                None
            }
        }
    }

    fn step_reader(
        &self,
        pid: usize,
        r: &mut fig2::ReaderLocal,
        mem: &mut MemAccess<'_>,
    ) -> StepEvent {
        use fig2::RPc;
        match (self.which, r.pc) {
            (Fig2Break::NoFeatureA, RPc::L20) => {
                // Mutant: lines 20-22 removed — perform the line-23 check
                // directly.
                let x2 = mem.read(self.vars.x);
                r.pc = if x2 == X_TRUE { RPc::L24 } else { RPc::Cs };
                StepEvent::Progress
            }
            (Fig2Break::NoFeatureB, RPc::Promote(pc)) => {
                r.pc = match self.step_promote_no_b(pc, &mut r.x, mem) {
                    Some(next) => RPc::Promote(next),
                    None => RPc::Remainder,
                };
                StepEvent::Progress
            }
            _ => fig2::step_reader(&self.vars, pid, r, mem),
        }
    }

    fn step_writer(
        &self,
        pid: usize,
        w: &mut fig2::WriterLocal,
        mem: &mut MemAccess<'_>,
    ) -> StepEvent {
        use fig2::WPc;
        match (self.which, w.pc) {
            (Fig2Break::NoFeatureB, WPc::Promote(pc)) => {
                w.pc = match self.step_promote_no_b(pc, &mut w.x, mem) {
                    Some(next) => WPc::Promote(next),
                    None => WPc::L5,
                };
                StepEvent::Progress
            }
            _ => fig2::step_writer(&self.vars, pid, w, mem),
        }
    }
}

impl Algorithm for Fig2Mutant {
    type Local = fig2::Fig2Local;

    fn name(&self) -> &'static str {
        match self.which {
            Fig2Break::NoFeatureA => "mutant-fig2-no-feature-a",
            Fig2Break::NoFeatureB => "mutant-fig2-no-feature-b",
        }
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.readers + 1
    }

    fn role(&self, pid: usize) -> Role {
        if pid == 0 {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, pid: usize) -> fig2::Fig2Local {
        if pid == 0 {
            fig2::Fig2Local::Writer(fig2::WriterLocal::initial())
        } else {
            fig2::Fig2Local::Reader(fig2::ReaderLocal::initial())
        }
    }

    fn step(&self, pid: usize, local: &mut fig2::Fig2Local, mem: &mut MemAccess<'_>) -> StepEvent {
        match local {
            fig2::Fig2Local::Writer(w) => self.step_writer(pid, w, mem),
            fig2::Fig2Local::Reader(r) => self.step_reader(pid, r, mem),
        }
    }

    fn phase(&self, _pid: usize, local: &fig2::Fig2Local) -> Phase {
        match local {
            fig2::Fig2Local::Writer(w) => fig2::writer_phase(w),
            fig2::Fig2Local::Reader(r) => fig2::reader_phase(r),
        }
    }
}
