//! Encoding of Anderson's array lock, used as `M` by the Figure 3 and
//! Figure 4 machines.

use crate::mem::{MemAccess, MemLayout, VarId};

/// Shared variables of one Anderson lock instance.
#[derive(Debug, Clone)]
pub struct AndersonVars {
    /// Ticket dispenser.
    pub next_ticket: VarId,
    /// Spin slots; `slots\[0\]` starts open.
    pub slots: Vec<VarId>,
}

impl AndersonVars {
    /// Allocates a lock with capacity for `contenders` concurrent waiters
    /// (rounded up to a power of two, minimum 2).
    pub fn alloc(layout: &mut MemLayout, contenders: usize) -> Self {
        let cap = contenders.next_power_of_two().max(2);
        let mut slots = Vec::with_capacity(cap);
        for i in 0..cap {
            slots.push(layout.var(&format!("M.slot[{i}]"), u64::from(i == 0)));
        }
        Self { next_ticket: layout.var("M.next_ticket", 0), slots }
    }

    /// Slot variable for a ticket.
    pub fn slot(&self, ticket: u64) -> VarId {
        self.slots[(ticket as usize) % self.slots.len()]
    }

    /// Step: draw a ticket (the lock's bounded doorway).
    pub fn take_ticket(&self, mem: &mut MemAccess<'_>) -> u64 {
        mem.faa(self.next_ticket, 1)
    }

    /// Step: poll our slot; `true` once the lock is acquired.
    pub fn poll(&self, ticket: u64, mem: &mut MemAccess<'_>) -> bool {
        mem.read(self.slot(ticket)) == 1
    }

    /// Step: close our slot (first half of release).
    pub fn close_own(&self, ticket: u64, mem: &mut MemAccess<'_>) {
        mem.write(self.slot(ticket), 0);
    }

    /// Step: open the successor's slot (second half of release).
    pub fn open_next(&self, ticket: u64, mem: &mut MemAccess<'_>) {
        mem.write(self.slot(ticket.wrapping_add(1)), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::FreeModel;

    #[test]
    fn two_process_handoff() {
        let mut layout = MemLayout::new();
        let m = AndersonVars::alloc(&mut layout, 2);
        let mut cells = layout.build();
        let mut cost = FreeModel;

        let t0 = {
            let mut mem = MemAccess::new(0, &mut cells, &mut cost);
            m.take_ticket(&mut mem)
        };
        let t1 = {
            let mut mem = MemAccess::new(1, &mut cells, &mut cost);
            m.take_ticket(&mut mem)
        };
        assert_eq!((t0, t1), (0, 1));

        // p0 holds; p1 must wait.
        let mut mem = MemAccess::new(0, &mut cells, &mut cost);
        assert!(m.poll(t0, &mut mem));
        let mut mem = MemAccess::new(1, &mut cells, &mut cost);
        assert!(!m.poll(t1, &mut mem));

        // Release p0 → p1 acquires.
        let mut mem = MemAccess::new(0, &mut cells, &mut cost);
        m.close_own(t0, &mut mem);
        let mut mem = MemAccess::new(0, &mut cells, &mut cost);
        m.open_next(t0, &mut mem);
        let mut mem = MemAccess::new(1, &mut cells, &mut cost);
        assert!(m.poll(t1, &mut mem));
    }
}
