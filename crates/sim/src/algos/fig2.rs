//! Line-level encoding of Figure 2 (SWMR, reader priority).
//!
//! Process 0 is the writer, processes `1..=n` are readers. `X` is encoded
//! as the acting process's pid or the sentinel [`X_TRUE`]. The `Promote`
//! procedure (lines 10–16) is shared between the writer's try section and
//! every reader's exit section, exactly as in the paper.

use crate::machine::{Algorithm, Phase, Role, StepEvent};
use crate::mem::{MemAccess, MemLayout, VarId};

/// Encoding of `X = true`.
pub const X_TRUE: u64 = u64::MAX;

/// Shared variables of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Vars {
    /// `D`.
    pub d: VarId,
    /// `Gate\[0\]`, `Gate\[1\]`.
    pub gates: [VarId; 2],
    /// `X ∈ PID ∪ {true}`.
    pub x: VarId,
    /// `Permit`.
    pub permit: VarId,
    /// `C`.
    pub c: VarId,
}

impl Fig2Vars {
    /// Allocates with the paper's initial values: `D = 0`, `Gate\[0\] = true`,
    /// `Gate\[1\] = false`, `X` = some pid (0), `Permit = true`, `C = 0`.
    pub fn alloc(layout: &mut MemLayout) -> Self {
        Self {
            d: layout.var("D", 0),
            gates: [layout.var("Gate[0]", 1), layout.var("Gate[1]", 0)],
            x: layout.var("X", 0),
            permit: layout.var("Permit", 1),
            c: layout.var("C", 0),
        }
    }
}

/// Program counter inside `Promote()` (lines 10–16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PromotePc {
    P10,
    P12,
    P13,
    P14,
    P15,
    P16,
}

/// Writer program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WPc {
    Remainder,
    L2w,
    L3,
    Promote(PromotePc),
    L5,
    Cs,
    L7,
    L8,
    L9,
}

/// Writer local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriterLocal {
    /// Program counter.
    pub pc: WPc,
    /// The writer's view of `D`. Line 2 (`D ← D̄`) is encoded as a read
    /// step followed by a write step: under the Figure 3 transformation
    /// *different* processes take turns playing the writer role, so the
    /// incoming writer must learn `D` from shared memory. (The exhaustive
    /// explorer caught the locally-tracked-`D` shortcut violating P1 in
    /// exactly that setting.)
    pub d: u64,
    /// `Promote`'s local `x`.
    pub x: u64,
}

impl WriterLocal {
    /// Writer at rest (before its first attempt, `D = 0`).
    pub fn initial() -> Self {
        Self { pc: WPc::Remainder, d: 0, x: 0 }
    }
}

/// Executes one `Promote` step for process `pid`; returns the next
/// `PromotePc` or `None` when the procedure returns.
fn step_promote(
    vars: &Fig2Vars,
    pid: usize,
    pc: PromotePc,
    x_local: &mut u64,
    mem: &mut MemAccess<'_>,
) -> Option<PromotePc> {
    match pc {
        PromotePc::P10 => {
            // lines 10–11: x ← X; if (x ≠ true)
            *x_local = mem.read(vars.x);
            if *x_local != X_TRUE {
                Some(PromotePc::P12)
            } else {
                None
            }
        }
        PromotePc::P12 => {
            // line 12: if (CAS(X, x, i))
            if mem.cas(vars.x, *x_local, pid as u64) {
                Some(PromotePc::P13)
            } else {
                None
            }
        }
        PromotePc::P13 => {
            // line 13: if (¬Permit)
            if mem.read(vars.permit) == 0 {
                Some(PromotePc::P14)
            } else {
                None
            }
        }
        PromotePc::P14 => {
            // line 14: if (C = 0)
            if mem.read(vars.c) == 0 {
                Some(PromotePc::P15)
            } else {
                None
            }
        }
        PromotePc::P15 => {
            // line 15: if (CAS(X, i, true))
            if mem.cas(vars.x, pid as u64, X_TRUE) {
                Some(PromotePc::P16)
            } else {
                None
            }
        }
        PromotePc::P16 => {
            // line 16: Permit ← true
            mem.write(vars.permit, 1);
            None
        }
    }
}

/// One step of the Figure 2 writer (`pid` is its process id).
pub fn step_writer(
    vars: &Fig2Vars,
    pid: usize,
    local: &mut WriterLocal,
    mem: &mut MemAccess<'_>,
) -> StepEvent {
    match local.pc {
        WPc::Remainder => {
            // line 2 (read half): observe D
            local.d = mem.read(vars.d);
            local.pc = WPc::L2w;
        }
        WPc::L2w => {
            // line 2 (write half): D ← D̄
            local.d = 1 - local.d;
            mem.write(vars.d, local.d);
            local.pc = WPc::L3;
        }
        WPc::L3 => {
            // line 3: Permit ← false
            mem.write(vars.permit, 0);
            local.pc = WPc::Promote(PromotePc::P10); // line 4: Promote()
        }
        WPc::Promote(pc) => {
            local.pc = match step_promote(vars, pid, pc, &mut local.x, mem) {
                Some(next) => WPc::Promote(next),
                None => WPc::L5,
            };
        }
        WPc::L5 => {
            // line 5: wait till Permit
            if mem.read(vars.permit) == 1 {
                local.pc = WPc::Cs;
            } else {
                return StepEvent::Blocked;
            }
        }
        WPc::Cs => {
            // line 6: CRITICAL SECTION
            local.pc = WPc::L7;
        }
        WPc::L7 => {
            // line 7: Gate[D̄] ← false
            mem.write(vars.gates[(1 - local.d) as usize], 0);
            local.pc = WPc::L8;
        }
        WPc::L8 => {
            // line 8: Gate[D] ← true
            mem.write(vars.gates[local.d as usize], 1);
            local.pc = WPc::L9;
        }
        WPc::L9 => {
            // line 9: X ← i
            mem.write(vars.x, pid as u64);
            local.pc = WPc::Remainder;
        }
    }
    StepEvent::Progress
}

/// Phase of the Figure 2 writer.
///
/// Lines 2–4 (toggle, `Permit ← false`, the bounded `Promote`) are the
/// doorway; line 5 is the waiting room; lines 7–9 the exit.
pub fn writer_phase(local: &WriterLocal) -> Phase {
    match local.pc {
        WPc::Remainder => Phase::Remainder,
        WPc::L2w | WPc::L3 | WPc::Promote(_) => Phase::Doorway,
        WPc::L5 => Phase::WaitingRoom,
        WPc::Cs => Phase::Cs,
        WPc::L7 | WPc::L8 | WPc::L9 => Phase::Exit,
    }
}

/// Reader program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RPc {
    Remainder,
    L19,
    L20,
    L22,
    L23,
    L24,
    Cs,
    L26,
    Promote(PromotePc),
}

/// Reader local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderLocal {
    /// Program counter.
    pub pc: RPc,
    /// `d`.
    pub d: u64,
    /// try-section `x` (line 20) and `Promote`'s `x`.
    pub x: u64,
}

impl ReaderLocal {
    /// Reader at rest.
    pub fn initial() -> Self {
        Self { pc: RPc::Remainder, d: 0, x: 0 }
    }
}

/// One step of the Figure 2 reader (`pid` is its process id).
pub fn step_reader(
    vars: &Fig2Vars,
    pid: usize,
    local: &mut ReaderLocal,
    mem: &mut MemAccess<'_>,
) -> StepEvent {
    match local.pc {
        RPc::Remainder => {
            // line 18: F&A(C, 1)
            mem.faa(vars.c, 1);
            local.pc = RPc::L19;
        }
        RPc::L19 => {
            // line 19: d ← D
            local.d = mem.read(vars.d);
            local.pc = RPc::L20;
        }
        RPc::L20 => {
            // lines 20–21: x ← X; if (x ∈ PID)
            local.x = mem.read(vars.x);
            local.pc = if local.x != X_TRUE { RPc::L22 } else { RPc::L23 };
        }
        RPc::L22 => {
            // line 22: CAS(X, x, i) — outcome ignored
            let _ = mem.cas(vars.x, local.x, pid as u64);
            local.pc = RPc::L23;
        }
        RPc::L23 => {
            // line 23: if (X = true)
            local.pc = if mem.read(vars.x) == X_TRUE { RPc::L24 } else { RPc::Cs };
        }
        RPc::L24 => {
            // line 24: wait till Gate[d]
            if mem.read(vars.gates[local.d as usize]) == 1 {
                local.pc = RPc::Cs;
            } else {
                return StepEvent::Blocked;
            }
        }
        RPc::Cs => {
            // line 25: CRITICAL SECTION
            local.pc = RPc::L26;
        }
        RPc::L26 => {
            // line 26: F&A(C, -1)
            mem.faa(vars.c, 1u64.wrapping_neg());
            local.pc = RPc::Promote(PromotePc::P10); // line 27: Promote()
        }
        RPc::Promote(pc) => {
            local.pc = match step_promote(vars, pid, pc, &mut local.x, mem) {
                Some(next) => RPc::Promote(next),
                None => RPc::Remainder,
            };
        }
    }
    StepEvent::Progress
}

/// Phase of the Figure 2 reader.
pub fn reader_phase(local: &ReaderLocal) -> Phase {
    match local.pc {
        RPc::Remainder => Phase::Remainder,
        RPc::L19 | RPc::L20 | RPc::L22 | RPc::L23 => Phase::Doorway,
        RPc::L24 => Phase::WaitingRoom,
        RPc::Cs => Phase::Cs,
        RPc::L26 | RPc::Promote(_) => Phase::Exit,
    }
}

/// Per-process local state of the [`Fig2`] machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig2Local {
    /// The single writer (process 0).
    Writer(WriterLocal),
    /// A reader.
    Reader(ReaderLocal),
}

/// The Figure 2 machine: process 0 is the writer, `1..=readers` readers.
#[derive(Debug)]
pub struct Fig2 {
    layout: MemLayout,
    vars: Fig2Vars,
    readers: usize,
}

impl Fig2 {
    /// Builds the machine with `readers` reader processes.
    pub fn new(readers: usize) -> Self {
        let mut layout = MemLayout::new();
        let vars = Fig2Vars::alloc(&mut layout);
        Self { layout, vars, readers }
    }

    /// The shared-variable ids (used by the invariant checkers).
    pub fn vars(&self) -> &Fig2Vars {
        &self.vars
    }
}

impl Algorithm for Fig2 {
    type Local = Fig2Local;

    fn name(&self) -> &'static str {
        "fig2-swmr-reader-priority"
    }

    fn layout(&self) -> &MemLayout {
        &self.layout
    }

    fn processes(&self) -> usize {
        self.readers + 1
    }

    fn role(&self, pid: usize) -> Role {
        if pid == 0 {
            Role::Writer
        } else {
            Role::Reader
        }
    }

    fn initial_local(&self, pid: usize) -> Fig2Local {
        if pid == 0 {
            Fig2Local::Writer(WriterLocal::initial())
        } else {
            Fig2Local::Reader(ReaderLocal::initial())
        }
    }

    fn step(&self, pid: usize, local: &mut Fig2Local, mem: &mut MemAccess<'_>) -> StepEvent {
        match local {
            Fig2Local::Writer(w) => step_writer(&self.vars, pid, w, mem),
            Fig2Local::Reader(r) => step_reader(&self.vars, pid, r, mem),
        }
    }

    fn phase(&self, _pid: usize, local: &Fig2Local) -> Phase {
        match local {
            Fig2Local::Writer(w) => writer_phase(w),
            Fig2Local::Reader(r) => reader_phase(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CcModel, FreeModel};
    use crate::runner::{RandomSched, RoundRobin, Runner};

    #[test]
    fn solo_writer_promotes_itself() {
        let alg = Fig2::new(0);
        let mut r = Runner::new(alg, FreeModel, 3);
        let mut sched = RoundRobin::default();
        r.run(&mut sched, 1000);
        assert!(r.quiescent());
        assert!(r.violations().is_empty());
        for a in r.finished_attempts() {
            assert!(a.try_steps <= 10, "solo writer must be fast: {a:?}");
        }
    }

    #[test]
    fn solo_readers_never_wait() {
        let alg = Fig2::new(4);
        let mut r = Runner::new(alg, FreeModel, 5);
        r.set_budget(0, 0);
        let mut sched = RandomSched::new(5);
        r.run(&mut sched, 20_000);
        assert!(r.quiescent());
        for a in r.finished_attempts() {
            assert!(a.try_steps <= 6, "concurrent entering violated: {a:?}");
        }
    }

    #[test]
    fn mixed_runs_preserve_exclusion() {
        for seed in 0..20 {
            let alg = Fig2::new(3);
            let mut r = Runner::new(alg, FreeModel, 4);
            let mut sched = RandomSched::new(seed);
            r.run(&mut sched, 200_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
            assert!(r.quiescent(), "seed {seed}: did not quiesce");
        }
    }

    #[test]
    fn rmr_per_attempt_is_constant_under_cc() {
        let mut maxes = Vec::new();
        for readers in [1usize, 4, 16, 48] {
            let n = readers + 1;
            let alg = Fig2::new(readers);
            let vars = alg.layout().len();
            let mut r = Runner::new(alg, CcModel::new(n, vars), 5);
            let mut sched = RandomSched::new(9);
            r.run(&mut sched, 2_000_000);
            assert!(r.quiescent());
            let max = r.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
            maxes.push(max);
        }
        assert!(maxes.iter().all(|&m| m <= 20), "RMR bound is not constant: {maxes:?}");
        let last = maxes.len() - 1;
        assert!(
            maxes[last] <= maxes[last - 1] + 2,
            "no plateau — still growing at large n: {maxes:?}"
        );
    }

    #[test]
    fn subtle_feature_a_regression() {
        // §4.3 (A): without lines 20–22, a reader racing a promoter breaks
        // mutual exclusion. With them, the following adversarial schedule
        // must stay safe: writer runs Promote up to line 15, reader starts,
        // writer completes.
        use crate::runner::WeightedSched;
        for seed in 0..30 {
            let alg = Fig2::new(2);
            let mut r = Runner::new(alg, FreeModel, 3);
            let mut sched = WeightedSched::new(seed, vec![10.0, 1.0, 1.0]);
            r.run(&mut sched, 200_000);
            assert!(r.violations().is_empty(), "seed {seed}: {:?}", r.violations());
        }
    }
}
