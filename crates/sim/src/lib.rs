//! Abstract shared-memory machine for verifying and measuring the
//! constant-RMR reader-writer algorithms of Bhatt & Jayanti (PODC 2010).
//!
//! The paper's claims are stated over an abstract model: processes take
//! atomic steps on shared read/write/fetch&add/CAS variables, and cost is
//! counted in *remote memory references* under the cache-coherent (CC) or
//! distributed-shared-memory (DSM) model. This crate implements that model
//! directly:
//!
//! * [`mem`] — word-addressed shared memory, one atomic operation per step;
//! * [`cost`] — the CC (write-invalidate) and DSM RMR cost models;
//! * [`machine`] — algorithms as PC-based step machines whose program
//!   counters mirror the paper's line numbers;
//! * [`algos`] — encodings of Figures 1–4, Anderson's lock, the baseline
//!   locks, and deliberately broken mutants (§3.3/§4.3 regressions);
//! * [`runner`] — schedulers (round-robin, seeded random, weighted
//!   adversary) and per-attempt logging (timing, steps, RMRs);
//! * [`explore`] — exhaustive bounded model checking over all
//!   interleavings;
//! * [`predicates`] — the exclusion/deadlock safety predicates, shared
//!   verbatim with the real-code checker (`rmr-check`);
//! * [`props`] — checkers for the paper's properties P1–P7, RP1/RP2,
//!   WP1/WP2;
//! * [`trace`] — counterexample extraction (violations as replayable
//!   schedules);
//! * [`invariants`] — the Appendix A / Figure 5 proof invariants as state
//!   predicates.
//!
//! # Example: model-check Figure 1 exhaustively
//!
//! ```
//! use rmr_sim::algos::fig1::Fig1;
//! use rmr_sim::explore::{explore, StateCheck};
//! use rmr_sim::invariants::fig1_invariants;
//!
//! let alg = Fig1::new(1); // 1 writer + 1 reader
//! let checks: [StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
//! let report = explore(&alg, &[1, 1], 1_000_000, &checks);
//! assert!(report.clean());
//! ```
//!
//! # Example: measure RMRs under the CC model
//!
//! ```
//! use rmr_sim::algos::fig1::Fig1;
//! use rmr_sim::cost::CcModel;
//! use rmr_sim::runner::{RandomSched, Runner};
//!
//! let alg = Fig1::new(4);
//! let vars = rmr_sim::machine::Algorithm::layout(&alg).len();
//! let mut runner = Runner::new(alg, CcModel::new(5, vars), 3);
//! runner.run(&mut RandomSched::new(7), 100_000);
//! let max_rmrs = runner.finished_attempts().iter().map(|a| a.rmrs).max().unwrap();
//! assert!(max_rmrs < 30); // O(1), not O(n)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algos;
pub mod cost;
pub mod explore;
pub mod invariants;
pub mod machine;
pub mod mem;
pub mod predicates;
pub mod props;
pub mod rng;
pub mod runner;
pub mod trace;

pub use machine::{Algorithm, Phase, Role, StepEvent};
pub use runner::{AttemptLog, Config, RandomSched, RoundRobin, Runner, WeightedSched};
