//! Exhaustive state-space exploration (bounded model checking).
//!
//! Explores **every** interleaving of an algorithm for a bounded number of
//! attempts per process, checking safety predicates in every reachable
//! configuration:
//!
//! * mutual exclusion (P1), from the phase map;
//! * user-supplied state invariants (the Appendix A / Figure 5 predicates
//!   live in [`crate::invariants`]);
//! * deadlock freedom: a configuration where work remains but no process
//!   can ever change the state again is reported.
//!
//! Attempt budgets make the state space finite; the explorer deduplicates
//! configurations (shared memory + all locals + per-process completion
//! counts) with a hash set.

use crate::cost::FreeModel;
use crate::machine::{Algorithm, Phase, Role};
use crate::mem::MemAccess;
use crate::predicates::{rw_exclusion, Occupancy, StatePredicate};
use crate::runner::Config;
use std::collections::HashSet;
use std::fmt;

/// One explored node: configuration plus per-process completed-attempt
/// counts (needed to know who may still start a new attempt).
struct Node<A: Algorithm> {
    cfg: Config<A>,
    completed: Vec<u32>,
}

// Manual impls: derives would wrongly bound `A` itself.
impl<A: Algorithm> Clone for Node<A> {
    fn clone(&self) -> Self {
        Self { cfg: self.cfg.clone(), completed: self.completed.clone() }
    }
}

impl<A: Algorithm> PartialEq for Node<A> {
    fn eq(&self, other: &Self) -> bool {
        self.completed == other.completed && self.cfg == other.cfg
    }
}

impl<A: Algorithm> Eq for Node<A> {}

impl<A: Algorithm> std::hash::Hash for Node<A> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.cfg.hash(state);
        self.completed.hash(state);
    }
}

/// A state-dependent safety check, run in every reachable configuration.
/// Any `fn(&A, &Config<A>) -> Result<(), String>` (the invariant
/// functions of [`crate::invariants`]) coerces to this via the
/// [`StatePredicate`] blanket impl.
pub type StateCheck<'a, A> = &'a dyn StatePredicate<A, Config<A>>;

/// Result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct configurations visited.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// First few safety violations found (empty = all checks passed).
    pub violations: Vec<String>,
    /// Deadlocked configurations found (descriptions).
    pub deadlocks: Vec<String>,
    /// True if the exploration hit `max_states` before exhausting the
    /// space.
    pub truncated: bool,
}

impl ExploreReport {
    /// True when the bounded space was fully explored with no violation
    /// and no deadlock.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.deadlocks.is_empty() && !self.truncated
    }
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} violations, {} deadlocks{}",
            self.states,
            self.transitions,
            self.violations.len(),
            self.deadlocks.len(),
            if self.truncated { " (TRUNCATED)" } else { "" }
        )
    }
}

/// Explores all interleavings of `alg` where process `p` performs at most
/// `budgets[p]` attempts. Stops early after `max_states` configurations.
#[allow(clippy::needless_range_loop)] // indexing by pid mirrors the model
pub fn explore<A: Algorithm>(
    alg: &A,
    budgets: &[u32],
    max_states: usize,
    checks: &[StateCheck<'_, A>],
) -> ExploreReport {
    assert_eq!(budgets.len(), alg.processes());
    let root = Node { cfg: Config::initial(alg), completed: vec![0; alg.processes()] };

    let mut seen: HashSet<Node<A>> = HashSet::new();
    let mut stack: Vec<Node<A>> = Vec::new();
    let mut report = ExploreReport {
        states: 0,
        transitions: 0,
        violations: Vec::new(),
        deadlocks: Vec::new(),
        truncated: false,
    };

    seen.insert(root.clone());
    stack.push(root);

    while let Some(node) = stack.pop() {
        report.states += 1;
        if report.states >= max_states {
            report.truncated = true;
            break;
        }

        // --- safety checks in this configuration ---
        check_exclusion(alg, &node.cfg, &mut report);
        for check in checks {
            if let Err(msg) = check.check(alg, &node.cfg) {
                if report.violations.len() < 16 {
                    report.violations.push(format!("invariant: {msg} in {:?}", node.cfg.locals));
                }
            }
        }

        // --- expand successors ---
        let mut any_progress = false;
        let mut any_runnable = false;
        for pid in 0..alg.processes() {
            let phase = alg.phase(pid, &node.cfg.locals[pid]);
            let may_start = node.completed[pid] < budgets[pid];
            if phase == Phase::Remainder && !may_start {
                continue; // finished its budget
            }
            any_runnable = true;

            let mut next = node.clone();
            let before = phase;
            {
                let mut cost = FreeModel;
                let mut mem = MemAccess::new(pid, &mut next.cfg.cells, &mut cost);
                let _ = alg.step(pid, &mut next.cfg.locals[pid], &mut mem);
            }
            let after = alg.phase(pid, &next.cfg.locals[pid]);
            if before != Phase::Remainder && after == Phase::Remainder {
                next.completed[pid] += 1;
            }
            if next == node {
                continue; // blocked self-loop
            }
            any_progress = true;
            report.transitions += 1;
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }

        if any_runnable && !any_progress && report.deadlocks.len() < 4 {
            report.deadlocks.push(format!(
                "deadlock: completed={:?} locals={:?}",
                node.completed, node.cfg.locals
            ));
        }
    }

    report
}

fn check_exclusion<A: Algorithm>(alg: &A, cfg: &Config<A>, report: &mut ExploreReport) {
    // Occupancy is derived from the phase map; the exclusion predicate
    // itself is shared with the real-code checker (`rmr-check`).
    let mut occ = Occupancy { writers: 0, readers: 0 };
    for p in 0..alg.processes() {
        if alg.phase(p, &cfg.locals[p]) == Phase::Cs {
            match alg.role(p) {
                Role::Writer => occ.writers += 1,
                Role::Reader => occ.readers += 1,
            }
        }
    }
    if let Err(msg) = rw_exclusion(occ) {
        if report.violations.len() < 16 {
            report.violations.push(format!("{msg}; locals={:?}", cfg.locals));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::fig1::Fig1;

    #[test]
    fn tiny_fig1_space_is_clean() {
        let alg = Fig1::new(1);
        let report = explore(&alg, &[1, 1], 2_000_000, &[]);
        assert!(report.clean(), "{report}: {:?} {:?}", report.violations, report.deadlocks);
        assert!(report.states > 50, "suspiciously small space: {report}");
    }

    #[test]
    fn explorer_respects_max_states() {
        let alg = Fig1::new(2);
        let report = explore(&alg, &[2, 2, 2], 500, &[]);
        assert!(report.truncated);
        assert!(report.states <= 500);
    }
}
