//! The algorithm abstraction: processes as PC-based step machines.
//!
//! Every algorithm (the paper's Figures 1–4 and the baselines) is encoded
//! as an implementation of [`Algorithm`]: a set of shared variables plus a
//! per-process local state whose program counter mirrors the paper's line
//! numbers. One call to [`Algorithm::step`] executes one atomic
//! shared-memory operation — the granularity at which the paper's
//! interleaving semantics and invariants are stated.

use crate::mem::{MemAccess, MemLayout};
use std::fmt;
use std::hash::Hash;

/// Whether a process is a reader or a writer (fixed per process, as in the
/// paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// May share the critical section with other readers.
    Reader,
    /// Excludes everyone.
    Writer,
}

/// The paper's four code sections, with the try section split into its
/// bounded doorway and its waiting room (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Not competing.
    Remainder,
    /// The bounded straight-line prefix of the try section.
    Doorway,
    /// Busy-waiting for permission to enter.
    WaitingRoom,
    /// Inside the critical section.
    Cs,
    /// The (bounded) exit section.
    Exit,
}

/// What a single step did, as far as the harness needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// State advanced normally.
    Progress,
    /// The process re-checked a wait condition that is still false; its
    /// local state did not change.
    Blocked,
}

/// An encoded algorithm.
///
/// Implementations allocate their shared variables from a [`MemLayout`] at
/// construction time and keep the `VarId`s; the harness owns the actual
/// memory image so that configurations can be cloned, hashed and explored.
pub trait Algorithm {
    /// Per-process local state (program counter + local variables). Must be
    /// hashable so the explorer can deduplicate configurations.
    type Local: Clone + Eq + Hash + fmt::Debug;

    /// Human-readable algorithm name for reports.
    fn name(&self) -> &'static str;

    /// The memory layout (shared-variable names and initial values).
    fn layout(&self) -> &MemLayout;

    /// Number of processes this instance was built for.
    fn processes(&self) -> usize;

    /// The fixed role of process `pid`.
    fn role(&self, pid: usize) -> Role;

    /// The initial local state of `pid` (in its remainder section).
    fn initial_local(&self, pid: usize) -> Self::Local;

    /// Executes one atomic step of `pid`.
    ///
    /// A process in its remainder section begins a new attempt; a process
    /// whose wait condition is false returns [`StepEvent::Blocked`] and
    /// leaves `local` unchanged.
    fn step(&self, pid: usize, local: &mut Self::Local, mem: &mut MemAccess<'_>) -> StepEvent;

    /// The section `local` is currently in.
    fn phase(&self, pid: usize, local: &Self::Local) -> Phase;
}

/// Extension helpers shared by the harness.
pub trait AlgorithmExt: Algorithm {
    /// Readers among the processes.
    fn readers(&self) -> Vec<usize> {
        (0..self.processes()).filter(|&p| self.role(p) == Role::Reader).collect()
    }

    /// Writers among the processes.
    fn writers(&self) -> Vec<usize> {
        (0..self.processes()).filter(|&p| self.role(p) == Role::Writer).collect()
    }
}

impl<A: Algorithm + ?Sized> AlgorithmExt for A {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemLayout;

    /// A trivial one-variable "lock" used to test the harness plumbing: a
    /// single process that toggles a flag and cycles through all phases.
    struct Toggle {
        layout: MemLayout,
        flag: crate::mem::VarId,
    }

    impl Toggle {
        fn new() -> Self {
            let mut layout = MemLayout::new();
            let flag = layout.var("flag", 0);
            Self { layout, flag }
        }
    }

    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    enum TogglePc {
        Remainder,
        Doorway,
        Cs,
        Exit,
    }

    impl Algorithm for Toggle {
        type Local = TogglePc;

        fn name(&self) -> &'static str {
            "toggle"
        }

        fn layout(&self) -> &MemLayout {
            &self.layout
        }

        fn processes(&self) -> usize {
            1
        }

        fn role(&self, _pid: usize) -> Role {
            Role::Writer
        }

        fn initial_local(&self, _pid: usize) -> TogglePc {
            TogglePc::Remainder
        }

        fn step(&self, _pid: usize, local: &mut TogglePc, mem: &mut MemAccess<'_>) -> StepEvent {
            *local = match local {
                TogglePc::Remainder => TogglePc::Doorway,
                TogglePc::Doorway => {
                    mem.write(self.flag, 1);
                    TogglePc::Cs
                }
                TogglePc::Cs => TogglePc::Exit,
                TogglePc::Exit => {
                    mem.write(self.flag, 0);
                    TogglePc::Remainder
                }
            };
            StepEvent::Progress
        }

        fn phase(&self, _pid: usize, local: &TogglePc) -> Phase {
            match local {
                TogglePc::Remainder => Phase::Remainder,
                TogglePc::Doorway => Phase::Doorway,
                TogglePc::Cs => Phase::Cs,
                TogglePc::Exit => Phase::Exit,
            }
        }
    }

    #[test]
    fn toggle_cycles_through_phases() {
        use crate::cost::FreeModel;
        let alg = Toggle::new();
        let mut cells = alg.layout().build();
        let mut local = alg.initial_local(0);
        let mut cost = FreeModel;
        let mut phases = Vec::new();
        for _ in 0..8 {
            phases.push(alg.phase(0, &local));
            let mut mem = MemAccess::new(0, &mut cells, &mut cost);
            alg.step(0, &mut local, &mut mem);
        }
        assert_eq!(
            phases,
            vec![
                Phase::Remainder,
                Phase::Doorway,
                Phase::Cs,
                Phase::Exit,
                Phase::Remainder,
                Phase::Doorway,
                Phase::Cs,
                Phase::Exit,
            ]
        );
    }

    #[test]
    fn ext_helpers_partition_roles() {
        let alg = Toggle::new();
        assert_eq!(alg.writers(), vec![0]);
        assert!(alg.readers().is_empty());
    }
}
