//! Trace-based property checkers for the paper's specification (§2).
//!
//! These operate on the per-attempt logs a [`Runner`](crate::runner::Runner)
//! produces. Timing convention: every event timestamp is the global step
//! count at which the event became true; an attempt is
//!
//! * in its **try section** during `[begin, cs_enter)`,
//! * in its **waiting room** during `[doorway_end, cs_enter)`,
//! * in the **CS** during `[cs_enter, exit_begin)`,
//! * **doorway-precedes** another attempt iff its `doorway_end` ≤ the
//!   other's `begin` (Definition 1).
//!
//! Attempts that never reached a milestone are treated as reaching it at
//! `+∞` (`usize::MAX`), which is the correct reading of "does not enter the
//! CS before ..." for incomplete attempts.

use crate::machine::Algorithm;
use crate::runner::{enabled_solo, AttemptLog, Config};

const INF: usize = usize::MAX;

fn cs_enter(a: &AttemptLog) -> usize {
    a.cs_enter.unwrap_or(INF)
}

fn cs_interval(a: &AttemptLog) -> Option<(usize, usize)> {
    a.cs_enter.map(|s| (s, a.exit_begin.or(a.complete).unwrap_or(INF)))
}

/// Whether attempt `a` doorway-precedes attempt `b` (Definition 1).
pub fn doorway_precedes(a: &AttemptLog, b: &AttemptLog) -> bool {
    match a.doorway_end {
        Some(e) => e <= b.begin,
        None => false,
    }
}

/// P3 — FCFS among writers: if write attempt `a` doorway-precedes write
/// attempt `b`, then `b` does not enter the CS before `a`.
pub fn check_fcfs_writers(logs: &[AttemptLog]) -> Result<(), String> {
    let writers: Vec<_> = logs.iter().filter(|a| a.role_writer).collect();
    for a in &writers {
        for b in &writers {
            if doorway_precedes(a, b) && cs_enter(b) < cs_enter(a) {
                return Err(format!(
                    "FCFS violated: writer p{}#{} (doorway_end={:?}) was overtaken by p{}#{} \
                     (begin={}, cs={:?})",
                    a.pid, a.seq, a.doorway_end, b.pid, b.seq, b.begin, b.cs_enter
                ));
            }
        }
    }
    Ok(())
}

/// P4 — FIFE among readers: if read attempt `a` doorway-precedes read
/// attempt `b` and `b` enters the CS first, then `a` must be *enabled* at
/// the moment `b` enters. Enabledness is probed with a bounded solo run
/// from the configuration snapshot taken at `b`'s CS entry (the runner must
/// have been run with `snapshot_cs_entries(true)`).
pub fn check_fife_readers<A: Algorithm>(
    alg: &A,
    logs: &[AttemptLog],
    snapshots: &[(usize, usize, Config<A>)],
    solo_bound: u32,
) -> Result<(), String> {
    let readers: Vec<_> = logs.iter().filter(|a| !a.role_writer).collect();
    for a in &readers {
        for b in &readers {
            let (Some(b_cs), a_cs) = (b.cs_enter, cs_enter(a)) else { continue };
            if !doorway_precedes(a, b) || a_cs <= b_cs {
                continue;
            }
            // b overtook a; a must be enabled at time b_cs.
            let Some((_, _, cfg)) = snapshots.iter().find(|(t, p, _)| *t == b_cs && *p == b.pid)
            else {
                return Err(format!("missing CS-entry snapshot at t={b_cs} for p{}", b.pid));
            };
            if !enabled_solo(alg, cfg, a.pid, solo_bound) {
                return Err(format!(
                    "FIFE violated: reader p{}#{} overtaken by p{}#{} at t={} while not enabled",
                    a.pid, a.seq, b.pid, b.seq, b_cs
                ));
            }
        }
    }
    Ok(())
}

/// P5 — concurrent entering, bounded form: in a run where **no writer ever
/// left the remainder section**, every read attempt's try section takes at
/// most `bound` of its own steps.
pub fn check_concurrent_entering(logs: &[AttemptLog], bound: u32) -> Result<(), String> {
    if logs.iter().any(|a| a.role_writer) {
        return Err("concurrent-entering check requires a writer-free run".into());
    }
    for a in logs {
        if a.try_steps > bound {
            return Err(format!(
                "concurrent entering violated: reader p{}#{} took {} try steps (bound {bound})",
                a.pid, a.seq, a.try_steps
            ));
        }
    }
    Ok(())
}

/// P2 — bounded exit: every attempt's exit section takes at most `bound`
/// steps.
pub fn check_bounded_exit(logs: &[AttemptLog], bound: u32) -> Result<(), String> {
    for a in logs {
        if a.exit_steps > bound {
            return Err(format!(
                "bounded exit violated: p{}#{} took {} exit steps (bound {bound})",
                a.pid, a.seq, a.exit_steps
            ));
        }
    }
    Ok(())
}

/// Computes whether the reader-priority relation `r >rp w` (Definition 3)
/// holds between a read attempt and a write attempt, given all attempts in
/// the run (for the "someone is in the CS" clause).
pub fn rp_relates(r: &AttemptLog, w: &AttemptLog, all: &[AttemptLog]) -> bool {
    debug_assert!(!r.role_writer && w.role_writer);
    // Clause (a): r doorway-precedes w.
    if doorway_precedes(r, w) {
        return true;
    }
    // Clause (b): ∃ t with someone in the CS, r in its waiting room, w in
    // its try section.
    let Some(r_dw) = r.doorway_end else { return false };
    let lo = r_dw.max(w.begin);
    let hi = cs_enter(r).min(cs_enter(w));
    if lo >= hi {
        return false;
    }
    occupied_within(all, lo, hi, |_| true)
}

/// Computes whether the writer-priority relation `w >wp r` (Definition 4)
/// holds. Clause (b) requires a **writer** in the CS.
pub fn wp_relates(w: &AttemptLog, r: &AttemptLog, all: &[AttemptLog]) -> bool {
    debug_assert!(w.role_writer && !r.role_writer);
    if doorway_precedes(w, r) {
        return true;
    }
    let Some(w_dw) = w.doorway_end else { return false };
    let lo = w_dw.max(r.begin);
    let hi = cs_enter(w).min(cs_enter(r));
    if lo >= hi {
        return false;
    }
    occupied_within(all, lo, hi, |a| a.role_writer)
}

/// Is the CS occupied (by an attempt matching `filter`) at some time in
/// `[lo, hi)`?
fn occupied_within(
    all: &[AttemptLog],
    lo: usize,
    hi: usize,
    filter: impl Fn(&AttemptLog) -> bool,
) -> bool {
    all.iter().filter(|a| filter(a)).any(|a| cs_interval(a).is_some_and(|(s, e)| s < hi && e > lo))
}

/// RP1 — reader priority: whenever `r >rp w`, `w` does not enter the CS
/// before `r`.
pub fn check_reader_priority(logs: &[AttemptLog]) -> Result<(), String> {
    for r in logs.iter().filter(|a| !a.role_writer) {
        for w in logs.iter().filter(|a| a.role_writer) {
            if rp_relates(r, w, logs) && cs_enter(w) < cs_enter(r) {
                return Err(format!(
                    "RP1 violated: writer p{}#{} entered at {:?} before reader p{}#{} ({:?})",
                    w.pid, w.seq, w.cs_enter, r.pid, r.seq, r.cs_enter
                ));
            }
        }
    }
    Ok(())
}

/// WP1 — writer priority: whenever `w >wp r`, `r` does not enter the CS
/// before `w`.
pub fn check_writer_priority(logs: &[AttemptLog]) -> Result<(), String> {
    for w in logs.iter().filter(|a| a.role_writer) {
        for r in logs.iter().filter(|a| !a.role_writer) {
            if wp_relates(w, r, logs) && cs_enter(r) < cs_enter(w) {
                return Err(format!(
                    "WP1 violated: reader p{}#{} entered at {:?} before writer p{}#{} ({:?})",
                    r.pid, r.seq, r.cs_enter, w.pid, w.seq, w.cs_enter
                ));
            }
        }
    }
    Ok(())
}

/// RP2 part 1 — unstoppable readers: at every snapshot where a reader
/// enters the CS, every *other* reader currently in its waiting room must
/// be enabled. (The snapshot set gives exactly the configurations "a
/// reader is in the CS".)
pub fn check_unstoppable_readers<A: Algorithm>(
    alg: &A,
    snapshots: &[(usize, usize, Config<A>)],
    solo_bound: u32,
) -> Result<(), String> {
    use crate::machine::{Phase, Role};
    for (t, entering, cfg) in snapshots {
        if alg.role(*entering) != Role::Reader {
            continue;
        }
        for pid in 0..alg.processes() {
            if pid == *entering || alg.role(pid) != Role::Reader {
                continue;
            }
            if alg.phase(pid, &cfg.locals[pid]) == Phase::WaitingRoom
                && !enabled_solo(alg, cfg, pid, solo_bound)
            {
                return Err(format!(
                    "RP2(1) violated: reader p{pid} in waiting room not enabled at t={t} \
                     while reader p{entering} is in the CS"
                ));
            }
        }
    }
    Ok(())
}

/// Lemma 15 ("Waiting Reader Enabled", Appendix A) — if a reader `r` is in
/// the waiting room while the writer is in the CS, then `r` must be
/// enabled by the time the first reader enters the CS after that write
/// session.
///
/// Implemented over the CS-entry snapshots: for every reader entry that is
/// the *first* reader entry after some writer's CS, every other reader
/// that was already waiting during that writer's CS must pass the solo
/// enabledness probe in the snapshot configuration.
pub fn check_waiting_reader_enabled<A: Algorithm>(
    alg: &A,
    logs: &[AttemptLog],
    snapshots: &[(usize, usize, Config<A>)],
    solo_bound: u32,
) -> Result<(), String> {
    use crate::machine::{Phase, Role};
    let writer_cs: Vec<(usize, usize)> =
        logs.iter().filter(|a| a.role_writer).filter_map(cs_interval).collect();
    let reader_entries: Vec<usize> =
        logs.iter().filter(|a| !a.role_writer).filter_map(|a| a.cs_enter).collect();

    for &(_, w_end) in &writer_cs {
        // First reader CS entry after this write session.
        let Some(&t_first) = reader_entries.iter().filter(|&&t| t >= w_end).min() else {
            continue;
        };
        let Some((_, entering, cfg)) =
            snapshots.iter().find(|(t, p, _)| *t == t_first && alg.role(*p) == Role::Reader)
        else {
            continue; // snapshot for a writer entry at the same tick
        };
        // Readers that were waiting during the write session and still are.
        for r in logs.iter().filter(|a| !a.role_writer) {
            if r.pid == *entering {
                continue;
            }
            let Some(r_dw) = r.doorway_end else { continue };
            let waiting_through_cs = r_dw <= w_end && cs_enter(r) > t_first;
            if !waiting_through_cs {
                continue;
            }
            if alg.phase(r.pid, &cfg.locals[r.pid]) == Phase::WaitingRoom
                && !enabled_solo(alg, cfg, r.pid, solo_bound)
            {
                return Err(format!(
                    "Lemma 15 violated: reader p{}#{} waited through a write session ending \
                     at t={w_end} but is not enabled at t={t_first}",
                    r.pid, r.seq
                ));
            }
        }
    }
    Ok(())
}

/// Liveness (bounded form of P6/P7): after the run, no attempt may be left
/// incomplete.
pub fn check_all_complete(finished: &[AttemptLog], inflight: &[AttemptLog]) -> Result<(), String> {
    if let Some(stuck) = inflight.first() {
        return Err(format!(
            "liveness violated: p{}#{} stuck since t={} (and {} finished attempts)",
            stuck.pid,
            stuck.seq,
            stuck.begin,
            finished.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(
        pid: usize,
        writer: bool,
        begin: usize,
        doorway_end: usize,
        cs: usize,
        exit: usize,
        done: usize,
    ) -> AttemptLog {
        AttemptLog {
            pid,
            role_writer: writer,
            seq: 0,
            begin,
            doorway_end: Some(doorway_end),
            cs_enter: Some(cs),
            exit_begin: Some(exit),
            complete: Some(done),
            try_steps: 3,
            exit_steps: 2,
            rmrs: 5,
        }
    }

    #[test]
    fn fcfs_detects_overtake() {
        let a = attempt(0, true, 0, 5, 100, 110, 120);
        let b = attempt(1, true, 10, 15, 50, 60, 70);
        assert!(check_fcfs_writers(&[a.clone(), b.clone()]).is_err());
        assert!(check_fcfs_writers(&[b, a]).is_err()); // order-insensitive
    }

    #[test]
    fn fcfs_accepts_ordered_entries() {
        let a = attempt(0, true, 0, 5, 50, 60, 70);
        let b = attempt(1, true, 10, 15, 100, 110, 120);
        assert!(check_fcfs_writers(&[a, b]).is_ok());
    }

    #[test]
    fn fcfs_ignores_doorway_concurrent_pairs() {
        // b begins before a's doorway ends → no constraint either way.
        let a = attempt(0, true, 0, 20, 100, 110, 120);
        let b = attempt(1, true, 10, 15, 50, 60, 70);
        assert!(check_fcfs_writers(&[a, b]).is_ok());
    }

    #[test]
    fn rp_relation_clause_a() {
        let r = attempt(1, false, 0, 5, 100, 110, 120);
        let w = attempt(0, true, 10, 15, 50, 60, 70);
        assert!(rp_relates(&r, &w, &[r.clone(), w.clone()]));
        assert!(check_reader_priority(&[r, w]).is_err());
    }

    #[test]
    fn rp_relation_clause_b_requires_occupied_cs() {
        // r waiting during [5,100), w trying during [10,50); nobody in CS
        // during the overlap → no relation.
        let r = attempt(1, false, 6, 8, 100, 110, 120);
        let w = attempt(0, true, 4, 5, 50, 60, 70);
        assert!(!rp_relates(&r, &w, &[r.clone(), w.clone()]));
        // Add a reader occupying the CS during [20, 30) → relation holds.
        let occ = attempt(2, false, 0, 1, 20, 30, 31);
        assert!(rp_relates(&r, &w, &[r.clone(), w.clone(), occ.clone()]));
        assert!(check_reader_priority(&[r, w, occ]).is_err());
    }

    #[test]
    fn wp_relation_clause_b_requires_writer_in_cs() {
        let w = attempt(0, true, 6, 8, 100, 110, 120);
        let r = attempt(1, false, 4, 5, 50, 60, 70);
        // A reader in the CS does not establish >wp ...
        let occ_r = attempt(2, false, 0, 1, 20, 30, 31);
        assert!(!wp_relates(&w, &r, &[w.clone(), r.clone(), occ_r]));
        // ... but a writer does.
        let occ_w = attempt(3, true, 0, 1, 20, 30, 31);
        assert!(wp_relates(&w, &r, &[w.clone(), r.clone(), occ_w.clone()]));
        assert!(check_writer_priority(&[w, r, occ_w]).is_err());
    }

    #[test]
    fn bounded_exit_flags_long_exits() {
        let mut a = attempt(0, false, 0, 1, 2, 3, 50);
        a.exit_steps = 40;
        assert!(check_bounded_exit(&[a], 10).is_err());
    }

    #[test]
    fn all_complete_flags_stuck_attempts() {
        let done = attempt(0, false, 0, 1, 2, 3, 4);
        let mut stuck = attempt(1, true, 5, 6, 7, 8, 9);
        stuck.cs_enter = None;
        stuck.complete = None;
        assert!(check_all_complete(std::slice::from_ref(&done), &[]).is_ok());
        assert!(check_all_complete(&[done], &[stuck]).is_err());
    }
}
