//! RMR cost models: cache-coherent (CC) and distributed shared memory (DSM).
//!
//! These are the *abstract* machine models the paper's complexity claims
//! quantify over (not silicon simulators):
//!
//! * **CC** — every process has a cache. A *read* of variable `X` is a
//!   remote memory reference (RMR) iff the process holds no valid cached
//!   copy; the read then caches `X`. Any *update* (write, fetch&add, CAS —
//!   successful or not) invalidates all other copies and is an RMR unless
//!   the updater already holds the only valid copy. Local spinning on a
//!   cached variable is therefore free, which is exactly the property the
//!   paper's algorithms exploit.
//! * **DSM** — every variable lives in exactly one process's memory module;
//!   an access is an RMR iff the accessor is not the variable's home.
//!   Busy-waiting on a remote variable costs one RMR *per poll*, which is
//!   the intuition behind the Danek–Hadzilacos Ω(n) lower bound for DSM
//!   (paper §1).
//! * **Free** — no accounting; used by the exhaustive explorer, where the
//!   cache state must not enlarge the searched state space.

use crate::mem::VarId;

/// How a shared-memory operation touches a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A plain read.
    Read,
    /// A write or read-modify-write (fetch&add, CAS — even a failed CAS
    /// performs the coherence transaction).
    Update,
}

/// An RMR cost model: decides whether each access is remote and tracks
/// whatever cache state that requires.
pub trait CostModel {
    /// Accounts one access by `pid` to `var`; returns `true` iff it is an
    /// RMR under this model.
    fn account(&mut self, pid: usize, var: VarId, kind: AccessKind) -> bool;

    /// Forgets all cache state (used between measurement phases).
    fn reset(&mut self);

    /// Short, stable name for reports ("cc", "dsm", "free").
    fn name(&self) -> &'static str;
}

impl<T: CostModel + ?Sized> CostModel for Box<T> {
    fn account(&mut self, pid: usize, var: VarId, kind: AccessKind) -> bool {
        (**self).account(pid, var, kind)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The cache-coherent model (write-invalidate, as in the RMR literature).
///
/// Supports up to 64 processes per instance (one bit per process per
/// variable).
///
/// # Example
///
/// ```
/// use rmr_sim::cost::{AccessKind, CcModel, CostModel};
/// use rmr_sim::mem::VarId;
///
/// let mut cc = CcModel::new(2, 1);
/// let x = VarId::from_index(0);
/// assert!(cc.account(0, x, AccessKind::Read));  // cold miss
/// assert!(!cc.account(0, x, AccessKind::Read)); // cached: free
/// assert!(cc.account(1, x, AccessKind::Update)); // invalidates p0
/// assert!(cc.account(0, x, AccessKind::Read));  // re-fetch after invalidation
/// ```
#[derive(Debug, Clone)]
pub struct CcModel {
    /// `holders[v]` = bitmask of processes with a valid cached copy of `v`.
    holders: Vec<u64>,
}

impl CcModel {
    /// Creates the model for `procs` processes and `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `procs > 64`.
    pub fn new(procs: usize, vars: usize) -> Self {
        assert!(procs <= 64, "CcModel supports at most 64 processes");
        Self { holders: vec![0; vars] }
    }

    fn ensure(&mut self, var: VarId) {
        if var.index() >= self.holders.len() {
            self.holders.resize(var.index() + 1, 0);
        }
    }

    /// Whether `pid` currently holds a valid cached copy of `var`.
    pub fn is_cached(&self, pid: usize, var: VarId) -> bool {
        self.holders.get(var.index()).is_some_and(|h| h & (1 << pid) != 0)
    }
}

impl CostModel for CcModel {
    fn account(&mut self, pid: usize, var: VarId, kind: AccessKind) -> bool {
        self.ensure(var);
        let bit = 1u64 << pid;
        let holders = &mut self.holders[var.index()];
        match kind {
            AccessKind::Read => {
                let hit = *holders & bit != 0;
                *holders |= bit;
                !hit
            }
            AccessKind::Update => {
                // Free only if we are the sole (exclusive) holder.
                let exclusive = *holders == bit;
                *holders = bit;
                !exclusive
            }
        }
    }

    fn reset(&mut self) {
        self.holders.iter_mut().for_each(|h| *h = 0);
    }

    fn name(&self) -> &'static str {
        "cc"
    }
}

/// The DSM model: each variable has a home process.
#[derive(Debug, Clone)]
pub struct DsmModel {
    home: Vec<usize>,
}

impl DsmModel {
    /// Creates the model with an explicit home assignment (`home[v]` = pid
    /// whose memory module holds variable `v`).
    pub fn new(home: Vec<usize>) -> Self {
        Self { home }
    }

    /// All variables homed at process 0 — the worst honest placement for
    /// algorithms whose waiters spin on shared gates (every other process
    /// polls remotely).
    pub fn all_at(pid: usize, vars: usize) -> Self {
        Self { home: vec![pid; vars] }
    }

    /// The home of `var` (process 0 for unassigned variables).
    pub fn home_of(&self, var: VarId) -> usize {
        self.home.get(var.index()).copied().unwrap_or(0)
    }
}

impl CostModel for DsmModel {
    fn account(&mut self, pid: usize, var: VarId, _kind: AccessKind) -> bool {
        self.home_of(var) != pid
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "dsm"
    }
}

/// No accounting (explorer mode): every access reports "not remote".
#[derive(Debug, Clone, Default)]
pub struct FreeModel;

impl CostModel for FreeModel {
    fn account(&mut self, _pid: usize, _var: VarId, _kind: AccessKind) -> bool {
        false
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "free"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn cc_read_caches_until_invalidated() {
        let mut cc = CcModel::new(3, 2);
        assert!(cc.account(0, var(0), AccessKind::Read));
        assert!(!cc.account(0, var(0), AccessKind::Read));
        assert!(!cc.account(0, var(0), AccessKind::Read));
        assert!(cc.is_cached(0, var(0)));
        // Another process updating invalidates p0's copy.
        assert!(cc.account(1, var(0), AccessKind::Update));
        assert!(!cc.is_cached(0, var(0)));
        assert!(cc.account(0, var(0), AccessKind::Read));
    }

    #[test]
    fn cc_exclusive_holder_updates_locally() {
        let mut cc = CcModel::new(2, 1);
        assert!(cc.account(0, var(0), AccessKind::Update)); // first touch
        assert!(!cc.account(0, var(0), AccessKind::Update)); // exclusive now
        assert!(!cc.account(0, var(0), AccessKind::Read));
        // p1 reads → shared; p0's next update is remote again.
        assert!(cc.account(1, var(0), AccessKind::Read));
        assert!(cc.account(0, var(0), AccessKind::Update));
    }

    #[test]
    fn cc_models_tas_vs_ttas() {
        // TAS: two spinners swapping → every swap is an RMR.
        let mut cc = CcModel::new(2, 1);
        let mut rmrs = 0;
        for _ in 0..10 {
            for p in 0..2 {
                if cc.account(p, var(0), AccessKind::Update) {
                    rmrs += 1;
                }
            }
        }
        assert_eq!(rmrs, 20, "TAS spinning should be all-RMR");

        // TTAS: spinning reads are free after the first.
        let mut cc = CcModel::new(2, 1);
        let mut rmrs = 0;
        for p in 0..2 {
            if cc.account(p, var(0), AccessKind::Read) {
                rmrs += 1;
            }
        }
        for _ in 0..10 {
            for p in 0..2 {
                if cc.account(p, var(0), AccessKind::Read) {
                    rmrs += 1;
                }
            }
        }
        assert_eq!(rmrs, 2, "TTAS spinning should be free after the cold miss");
    }

    #[test]
    fn dsm_home_access_is_free_remote_is_not() {
        let mut dsm = DsmModel::new(vec![0, 1]);
        assert!(!dsm.account(0, var(0), AccessKind::Read));
        assert!(dsm.account(0, var(1), AccessKind::Read));
        assert!(dsm.account(1, var(0), AccessKind::Update));
        assert!(!dsm.account(1, var(1), AccessKind::Update));
        // Polling a remote variable costs an RMR every single time.
        assert!(dsm.account(1, var(0), AccessKind::Read));
        assert!(dsm.account(1, var(0), AccessKind::Read));
    }

    #[test]
    fn dsm_all_at_homes_everything_in_one_module() {
        let dsm = DsmModel::all_at(2, 4);
        for v in 0..4 {
            assert_eq!(dsm.home_of(var(v)), 2);
        }
    }

    #[test]
    fn free_model_never_charges() {
        let mut f = FreeModel;
        assert!(!f.account(0, var(0), AccessKind::Update));
        assert!(!f.account(5, var(9), AccessKind::Read));
    }

    #[test]
    #[should_panic(expected = "at most 64 processes")]
    fn cc_rejects_too_many_processes() {
        let _ = CcModel::new(65, 1);
    }
}
