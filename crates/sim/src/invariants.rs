//! State invariants from the paper's proofs — Appendix A (Figure 1) and
//! Figure 5 (Figure 2) — as machine-checkable predicates.
//!
//! The paper proves its theorems Hoare-style, by exhibiting invariants
//! keyed on the writer's program counter and showing non-interference. We
//! transliterate the load-bearing ones and let the exhaustive explorer
//! evaluate them in **every reachable configuration** of small instances;
//! a transcription error in the algorithms (e.g. a dropped overbar — see
//! DESIGN.md §6) reliably trips one of these within a few thousand states.

use crate::algos::fig1::{Fig1, Fig1Local, RPc, WPc};
use crate::algos::fig2::{self, Fig2, Fig2Local};
use crate::runner::Config;

/// Which sides a Figure 1 reader is currently registered on (has
/// incremented but not yet decremented `C[s]`), derived from its local
/// state. This is Proposition A.1 plus the double-registration window.
fn fig1_reader_holds(local: &crate::algos::fig1::ReaderLocal) -> [bool; 2] {
    let d = local.d as usize;
    match local.pc {
        RPc::Remainder | RPc::L17 => [false, false],
        RPc::L18 | RPc::L20 => {
            let mut h = [false, false];
            h[d] = true;
            h
        }
        // Both increments done (lines 17 and 20), decrement pending.
        RPc::L21 | RPc::L22 => [true, true],
        // Line 22 retired the complement of the (re-read) `d`.
        RPc::L23 | RPc::L24 | RPc::Cs | RPc::L26 | RPc::L27 => {
            let mut h = [false, false];
            h[d] = true;
            h
        }
        RPc::L28 | RPc::L29 | RPc::L30 => [false, false],
    }
}

/// Whether a Figure 1 reader is registered in `EC` (incremented at line 26,
/// not yet decremented at line 29).
fn fig1_reader_in_ec(local: &crate::algos::fig1::ReaderLocal) -> bool {
    matches!(local.pc, RPc::L27 | RPc::L28 | RPc::L29)
}

/// The Appendix A invariants for Figure 1 (counter consistency, gate
/// discipline, and the exit-section emptiness that mutual exclusion rests
/// on). Use with [`crate::explore::explore`].
pub fn fig1_invariants(alg: &Fig1, cfg: &Config<Fig1>) -> Result<(), String> {
    let v = alg.vars();
    let writer = match &cfg.locals[0] {
        Fig1Local::Writer(w) => w,
        Fig1Local::Reader(_) => return Err("process 0 is not the writer".into()),
    };
    let readers: Vec<_> = cfg.locals[1..]
        .iter()
        .map(|l| match l {
            Fig1Local::Reader(r) => Ok(r),
            Fig1Local::Writer(_) => Err("reader pid holds writer state"),
        })
        .collect::<Result<_, _>>()?;

    // --- I1/I2: counter consistency (Proposition A.1 generalized) ---
    for s in 0..2usize {
        let expected_count = readers.iter().filter(|r| fig1_reader_holds(r)[s]).count() as u64;
        let writer_bit = matches!(writer.pc, WPc::L6 | WPc::L7) && writer.prev_d as usize == s;
        let expected = expected_count | if writer_bit { super::algos::fig1::WRITER_BIT } else { 0 };
        let actual = cfg.cells[v.c[s].index()];
        if actual != expected {
            return Err(format!(
                "C[{s}] = {actual:#x}, expected {expected:#x} (writer pc {:?})",
                writer.pc
            ));
        }
    }
    {
        let expected_count = readers.iter().filter(|r| fig1_reader_in_ec(r)).count() as u64;
        let writer_bit = matches!(writer.pc, WPc::L11 | WPc::L12);
        let expected = expected_count | if writer_bit { super::algos::fig1::WRITER_BIT } else { 0 };
        let actual = cfg.cells[v.ec.index()];
        if actual != expected {
            return Err(format!(
                "EC = {actual:#x}, expected {expected:#x} (writer pc {:?})",
                writer.pc
            ));
        }
    }

    // --- I3: gate discipline keyed on the writer's PC ---
    let g = [cfg.cells[v.gates[0].index()], cfg.cells[v.gates[1].index()]];
    match writer.pc {
        WPc::Remainder | WPc::L3 => {
            let d = cfg.cells[v.d.index()] as usize;
            if g[d] != 1 || g[1 - d] != 0 {
                return Err(format!("gates {g:?} wrong for idle writer (D={d})"));
            }
        }
        WPc::L4 | WPc::L5 | WPc::L6 | WPc::L7 | WPc::L8 => {
            let (curr, prev) = (writer.curr_d as usize, writer.prev_d as usize);
            if g[curr] != 0 || g[prev] != 1 {
                return Err(format!("gates {g:?} wrong at {:?} (curr={curr})", writer.pc));
            }
        }
        WPc::L9 | WPc::L10 | WPc::L11 | WPc::L12 | WPc::Cs | WPc::L14 => {
            if g != [0, 0] {
                return Err(format!("gates {g:?} must be closed at {:?}", writer.pc));
            }
        }
    }

    // --- I4: while the writer is in the CS or its exit, no reader is in
    // the CS or the exit section (PCw ∈ {13, 14} invariants, items 3–4) ---
    if matches!(writer.pc, WPc::Cs | WPc::L14) {
        for (i, r) in readers.iter().enumerate() {
            if matches!(r.pc, RPc::Cs | RPc::L26 | RPc::L27 | RPc::L28 | RPc::L29 | RPc::L30) {
                return Err(format!(
                    "reader p{} at {:?} while writer at {:?}",
                    i + 1,
                    r.pc,
                    writer.pc
                ));
            }
        }
    }
    Ok(())
}

/// How many readers are currently counted in Figure 2's `C` (between the
/// line-18 increment and the line-26 decrement).
fn fig2_reader_counted(local: &fig2::ReaderLocal) -> bool {
    use fig2::RPc;
    matches!(local.pc, RPc::L19 | RPc::L20 | RPc::L22 | RPc::L23 | RPc::L24 | RPc::Cs | RPc::L26)
}

/// The Figure 5 invariants for Figure 2.
pub fn fig2_invariants(alg: &Fig2, cfg: &Config<Fig2>) -> Result<(), String> {
    let v = alg.vars();
    let writer = match &cfg.locals[0] {
        Fig2Local::Writer(w) => w,
        Fig2Local::Reader(_) => return Err("process 0 is not the writer".into()),
    };
    let readers: Vec<_> = cfg.locals[1..]
        .iter()
        .map(|l| match l {
            Fig2Local::Reader(r) => Ok(r),
            Fig2Local::Writer(_) => Err("reader pid holds writer state"),
        })
        .collect::<Result<_, _>>()?;

    // --- Global invariant: C counts registered readers ---
    let expected = readers.iter().filter(|r| fig2_reader_counted(r)).count() as u64;
    let actual = cfg.cells[v.c.index()];
    if actual != expected {
        return Err(format!("C = {actual}, expected {expected}"));
    }

    // --- Gate discipline: exactly one gate open, except between the
    // writer's lines 7 and 8 where both are momentarily closed ---
    let g = [cfg.cells[v.gates[0].index()], cfg.cells[v.gates[1].index()]];
    let open = g.iter().filter(|&&x| x == 1).count();
    let expected_open = if writer.pc == fig2::WPc::L8 { 0 } else { 1 };
    if open != expected_open {
        return Err(format!(
            "{open} gates open at writer pc {:?} (expected {expected_open})",
            writer.pc
        ));
    }

    // --- Invariant 3: a reader in the CS implies X ≠ true, unless the
    // writer is at line 9 with Gate[D] already open ---
    let x = cfg.cells[v.x.index()];
    let any_reader_in_cs = readers.iter().any(|r| matches!(r.pc, fig2::RPc::Cs | fig2::RPc::L26));
    if any_reader_in_cs && x == fig2::X_TRUE {
        let gate_d_open = cfg.cells[v.gates[writer.d as usize].index()] == 1;
        if !(writer.pc == fig2::WPc::L9 && gate_d_open) {
            return Err(format!(
                "reader in CS with X = true while writer at {:?} (gate[D] open: {gate_d_open})",
                writer.pc
            ));
        }
    }

    // --- While the writer is in the CS: X = true, Permit = true, and no
    // reader occupies the CS or line 26 (PCw = 6 invariants) ---
    if writer.pc == fig2::WPc::Cs {
        if x != fig2::X_TRUE {
            return Err("writer in CS but X ≠ true".into());
        }
        if cfg.cells[v.permit.index()] != 1 {
            return Err("writer in CS but Permit ≠ true".into());
        }
        if any_reader_in_cs {
            return Err("reader in CS or at line 26 while writer in CS".into());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Composition invariants for the multi-writer machines (Figures 3 and 4).
// The paper leaves these proofs "as an exercise"; we state and check the
// load-bearing ones.
// ---------------------------------------------------------------------

use crate::algos::fig1::WRITER_BIT;
use crate::algos::fig3::{Fig3Sf, Fig3SfLocal, MPc};
use crate::algos::fig4::{F4Pc, Fig4, Fig4Local};

/// Invariants of Figure 3 over Figure 1:
///
/// * `M` exclusion: at most one writer holds the Anderson lock (is running
///   the inner protocol or has not yet closed its slot);
/// * counter consistency: `C[s]`/`EC` equal the registered readers plus
///   the (unique) inner writer's waiting bits.
pub fn fig3sf_invariants(alg: &Fig3Sf, cfg: &Config<Fig3Sf>) -> Result<(), String> {
    let v = alg.vars();
    let mut inner_writers = Vec::new();
    let mut readers = Vec::new();
    for (pid, l) in cfg.locals.iter().enumerate() {
        match l {
            Fig3SfLocal::Writer(MPc::Inner { inner, .. }) => inner_writers.push((pid, *inner)),
            Fig3SfLocal::Writer(MPc::Rel1 { .. }) => inner_writers.push((
                pid,
                crate::algos::fig1::WriterLocal::initial(), // inner already exited
            )),
            Fig3SfLocal::Writer(_) => {}
            Fig3SfLocal::Reader(r) => readers.push(*r),
        }
    }
    if inner_writers.len() > 1 {
        return Err(format!(
            "M exclusion violated: writers {:?} all hold the lock",
            inner_writers.iter().map(|(p, _)| *p).collect::<Vec<_>>()
        ));
    }

    for s in 0..2usize {
        let reader_count = readers.iter().filter(|r| fig1_reader_holds(r)[s]).count() as u64;
        let writer_bit = inner_writers
            .iter()
            .any(|(_, w)| matches!(w.pc, WPc::L6 | WPc::L7) && w.prev_d as usize == s);
        let expected = reader_count | if writer_bit { WRITER_BIT } else { 0 };
        let actual = cfg.cells[v.c[s].index()];
        if actual != expected {
            return Err(format!("fig3sf C[{s}] = {actual:#x}, expected {expected:#x}"));
        }
    }
    let ec_count = readers.iter().filter(|r| fig1_reader_in_ec(r)).count() as u64;
    let ec_bit = inner_writers.iter().any(|(_, w)| matches!(w.pc, WPc::L11 | WPc::L12));
    let expected = ec_count | if ec_bit { WRITER_BIT } else { 0 };
    let actual = cfg.cells[v.ec.index()];
    if actual != expected {
        return Err(format!("fig3sf EC = {actual:#x}, expected {expected:#x}"));
    }
    Ok(())
}

/// Invariants of Figure 4:
///
/// * `Wcount` equals the number of writers between their line-2 increment
///   and their line-16 decrement;
/// * `M` exclusion: at most one writer between acquiring `M` (line 10) and
///   closing its slot (line 17, first half);
/// * counter consistency for `C[s]`/`EC`, with the waiting bits owned by
///   the unique writer inside `SW-waiting-room`.
pub fn fig4_invariants(alg: &Fig4, cfg: &Config<Fig4>) -> Result<(), String> {
    let v = alg.vars();
    let mut counted = 0u64;
    let mut m_holders = Vec::new();
    let mut inner_bits: Vec<crate::algos::fig1::WriterLocal> = Vec::new();
    let mut readers = Vec::new();
    for (pid, l) in cfg.locals.iter().enumerate() {
        match l {
            Fig4Local::Writer(w) => {
                if !matches!(
                    w.pc,
                    F4Pc::Remainder | F4Pc::MRel1 | F4Pc::MRel2 | F4Pc::X18 | F4Pc::X19 | F4Pc::X20
                ) {
                    counted += 1;
                }
                if matches!(
                    w.pc,
                    F4Pc::L10
                        | F4Pc::L11
                        | F4Pc::L12
                        | F4Pc::InnerWr
                        | F4Pc::Cs
                        | F4Pc::X15
                        | F4Pc::X16
                        | F4Pc::MRel1
                ) {
                    m_holders.push(pid);
                }
                if w.pc == F4Pc::InnerWr {
                    inner_bits.push(w.inner);
                }
            }
            Fig4Local::Reader(r) => readers.push(*r),
        }
    }

    let wcount = cfg.cells[alg.wcount_var().index()];
    if wcount != counted {
        return Err(format!("Wcount = {wcount}, expected {counted}"));
    }
    if m_holders.len() > 1 {
        return Err(format!("M exclusion violated: {m_holders:?} all hold the lock"));
    }

    for s in 0..2usize {
        let reader_count = readers.iter().filter(|r| fig1_reader_holds(r)[s]).count() as u64;
        let writer_bit =
            inner_bits.iter().any(|w| matches!(w.pc, WPc::L6 | WPc::L7) && w.prev_d as usize == s);
        let expected = reader_count | if writer_bit { WRITER_BIT } else { 0 };
        let actual = cfg.cells[v.c[s].index()];
        if actual != expected {
            return Err(format!("fig4 C[{s}] = {actual:#x}, expected {expected:#x}"));
        }
    }
    let ec_count = readers.iter().filter(|r| fig1_reader_in_ec(r)).count() as u64;
    let ec_bit = inner_bits.iter().any(|w| matches!(w.pc, WPc::L11 | WPc::L12));
    let expected = ec_count | if ec_bit { WRITER_BIT } else { 0 };
    let actual = cfg.cells[v.ec.index()];
    if actual != expected {
        return Err(format!("fig4 EC = {actual:#x}, expected {expected:#x}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn fig1_invariants_hold_exhaustively_tiny() {
        let alg = Fig1::new(1);
        let checks: [crate::explore::StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
        let report = explore(&alg, &[2, 2], 3_000_000, &checks);
        assert!(report.clean(), "{report}\n{:?}\n{:?}", report.violations, report.deadlocks);
    }

    #[test]
    fn fig2_invariants_hold_exhaustively_tiny() {
        let alg = Fig2::new(1);
        let checks: [crate::explore::StateCheck<'_, Fig2>; 1] = [&fig2_invariants];
        let report = explore(&alg, &[2, 2], 3_000_000, &checks);
        assert!(report.clean(), "{report}\n{:?}\n{:?}", report.violations, report.deadlocks);
    }
}
