//! Counterexample extraction: exploration with parent tracking, so a
//! safety violation comes back as a concrete replayable schedule instead
//! of just a bad configuration.
//!
//! Used by the mutant suite to print the exact interleaving that breaks a
//! §3.3/§4.3-weakened algorithm — the machine-found version of the
//! scenarios the paper describes in prose.

use crate::cost::FreeModel;
use crate::machine::{Algorithm, Phase, Role};
use crate::mem::MemAccess;
use crate::runner::Config;
use std::collections::HashMap;
use std::fmt;

/// A schedule (sequence of pids) leading from the initial configuration to
/// a safety violation, plus a rendering of each step.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The pid to step at each point, starting from the initial config.
    pub schedule: Vec<usize>,
    /// Human-readable step log (`pid`, local state after the step).
    pub rendered: Vec<String>,
    /// Description of the violated predicate.
    pub violation: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "schedule ({} steps):", self.schedule.len())?;
        for line in &self.rendered {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Exploration node: configuration + per-process completed attempts.
type Key<A> = (Config<A>, Vec<u32>);
/// Arena entry: node, parent index, pid stepped to get here.
type ArenaEntry<A> = (Key<A>, usize, usize);

/// Explores like [`crate::explore::explore`] but tracks parents, stopping
/// at the **first** violation of mutual exclusion (P1) and returning the
/// schedule that reaches it. Returns `None` if the bounded space is clean
/// or `max_states` is exhausted first.
#[allow(clippy::needless_range_loop)] // indexing by pid mirrors the model
pub fn find_counterexample<A: Algorithm>(
    alg: &A,
    budgets: &[u32],
    max_states: usize,
) -> Option<Counterexample> {
    assert_eq!(budgets.len(), alg.processes());

    let root: Key<A> = (Config::initial(alg), vec![0; alg.processes()]);

    // Arena of visited nodes with (parent index, stepping pid).
    let mut arena: Vec<ArenaEntry<A>> = vec![(root.clone(), usize::MAX, usize::MAX)];
    let mut index: HashMap<Key<A>, usize> = HashMap::from([(root, 0)]);
    let mut frontier: Vec<usize> = vec![0];

    while let Some(node_idx) = frontier.pop() {
        if arena.len() >= max_states {
            return None;
        }
        let (node, _, _) = arena[node_idx].clone();

        for pid in 0..alg.processes() {
            let phase = alg.phase(pid, &node.0.locals[pid]);
            if phase == Phase::Remainder && node.1[pid] >= budgets[pid] {
                continue;
            }
            let mut next = node.clone();
            {
                let mut cost = FreeModel;
                let mut mem = MemAccess::new(pid, &mut next.0.cells, &mut cost);
                let _ = alg.step(pid, &mut next.0.locals[pid], &mut mem);
            }
            let after = alg.phase(pid, &next.0.locals[pid]);
            if phase != Phase::Remainder && after == Phase::Remainder {
                next.1[pid] += 1;
            }
            if next == node || index.contains_key(&next) {
                continue;
            }
            let next_idx = arena.len();
            arena.push((next.clone(), node_idx, pid));
            index.insert(next.clone(), next_idx);

            if let Some(violation) = exclusion_violation(alg, &next.0) {
                return Some(build_counterexample(alg, &arena, next_idx, violation));
            }
            frontier.push(next_idx);
        }
    }
    None
}

fn exclusion_violation<A: Algorithm>(alg: &A, cfg: &Config<A>) -> Option<String> {
    let mut writers = Vec::new();
    let mut readers = Vec::new();
    for p in 0..alg.processes() {
        if alg.phase(p, &cfg.locals[p]) == Phase::Cs {
            match alg.role(p) {
                Role::Writer => writers.push(p),
                Role::Reader => readers.push(p),
            }
        }
    }
    if writers.len() > 1 || (writers.len() == 1 && !readers.is_empty()) {
        Some(format!("P1: writers {writers:?} and readers {readers:?} share the CS"))
    } else {
        None
    }
}

fn build_counterexample<A: Algorithm>(
    alg: &A,
    arena: &[ArenaEntry<A>],
    mut idx: usize,
    violation: String,
) -> Counterexample {
    let mut rev: Vec<usize> = Vec::new();
    while idx != 0 {
        let (_, parent, pid) = &arena[idx];
        rev.push(*pid);
        idx = *parent;
    }
    rev.reverse();

    // Replay for rendering.
    let mut cfg = Config::initial(alg);
    let mut rendered = Vec::with_capacity(rev.len());
    for (i, &pid) in rev.iter().enumerate() {
        let mut cost = FreeModel;
        let mut mem = MemAccess::new(pid, &mut cfg.cells, &mut cost);
        let _ = alg.step(pid, &mut cfg.locals[pid], &mut mem);
        rendered.push(format!(
            "t={i:<3} p{pid} -> {:?} [{:?}]",
            cfg.locals[pid],
            alg.phase(pid, &cfg.locals[pid])
        ));
    }
    Counterexample { schedule: rev, rendered, violation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algos::fig1::Fig1;
    use crate::algos::mutants::{Fig2Break, Fig2Mutant};

    #[test]
    fn correct_algorithm_has_no_counterexample() {
        let alg = Fig1::new(1);
        assert!(find_counterexample(&alg, &[2, 2], 5_000_000).is_none());
    }

    #[test]
    fn mutant_yields_a_replayable_schedule() {
        let alg = Fig2Mutant::new(2, Fig2Break::NoFeatureA);
        let cex = find_counterexample(&alg, &[2, 2, 2], 60_000_000)
            .expect("feature-A mutant must have a P1 counterexample");
        assert!(!cex.schedule.is_empty());
        assert_eq!(cex.schedule.len(), cex.rendered.len());
        assert!(cex.violation.contains("P1"));

        // The schedule must actually replay to the violation.
        let mut cfg = Config::initial(&alg);
        let mut seen_violation = false;
        for &pid in &cex.schedule {
            let mut cost = FreeModel;
            let mut mem = crate::mem::MemAccess::new(pid, &mut cfg.cells, &mut cost);
            let _ = crate::machine::Algorithm::step(&alg, pid, &mut cfg.locals[pid], &mut mem);
            if exclusion_violation(&alg, &cfg).is_some() {
                seen_violation = true;
            }
        }
        assert!(seen_violation, "replay did not reproduce the violation:\n{cex}");
    }
}
