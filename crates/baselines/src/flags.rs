//! Per-reader-flag reader-writer lock (the "distributed reader indicator"
//! class of Lev–Luchangco–Olszewski \[24\] and Krieger et al. \[25\]).

use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedBool};
use rmr_mutex::CachePadded;
use rmr_mutex::{spin_until, RawMutex, TtasLock};
use std::fmt;

/// A reader-writer lock with one flag per reader slot: readers raise their
/// own cache-padded flag (one RMR) and check for a writer; writers raise a
/// global flag and then **scan all n reader flags**, waiting for each to
/// drop.
///
/// This reproduces the cost profile of the scalable read-mostly designs the
/// paper cites as prior art \[24, 25\]: reads are cheap and truly concurrent
/// (O(1) RMRs while no writer is active), but the writer pays **O(n)
/// RMRs** per attempt — exactly the asymmetry Bhatt & Jayanti remove.
/// Writer preference: a raised writer flag makes arriving readers retreat
/// (lower their flag and park), so the scan terminates.
///
/// # Example
///
/// ```
/// use rmr_baselines::DistributedFlagRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = DistributedFlagRwLock::new(8);
/// let t = lock.read_lock(Pid::from_index(3));
/// lock.read_unlock(Pid::from_index(3), t);
/// ```
pub struct DistributedFlagRwLock<B: Backend = Native> {
    /// One presence flag per reader slot, cache padded so raising one is a
    /// single line transfer.
    reader_flags: Box<[CachePadded<B::Bool>]>,
    /// Serializes writers.
    writer_mutex: TtasLock<B>,
    /// Raised while a writer is draining readers or in the CS.
    writer_present: B::Bool,
}

impl DistributedFlagRwLock {
    /// Creates the lock with `max_processes` reader slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> DistributedFlagRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`DistributedFlagRwLock::new`]).
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self {
            reader_flags: (0..max_processes)
                .map(|_| CachePadded::new(B::Bool::new(false)))
                .collect(),
            writer_mutex: TtasLock::new_in(backend),
            writer_present: B::Bool::new(false),
        }
    }

    /// Number of raised reader flags (diagnostic; O(n) scan).
    pub fn readers_visible(&self) -> usize {
        self.reader_flags.iter().filter(|f| f.load(Ordering::Relaxed)).count()
    }
}

impl<B: Backend> RawRwLock for DistributedFlagRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, pid: Pid) {
        let flag = &self.reader_flags[pid.index()];
        loop {
            // Site BL-FLAGS, a Dekker square: the reader raises its flag and
            // then reads writer_present; the writer raises writer_present and
            // then scans the flags. SC of these four accesses is the whole
            // mutual-exclusion argument ("one of us observes the other"), so
            // both store/load pairs are SeqCst. Demoting this raise is the
            // `WrongOrdering::DemoteFlagRaise` mutant (DESIGN.md §13).
            flag.store(true, Ordering::SeqCst);
            if !self.writer_present.load(Ordering::SeqCst) {
                // Flag-then-check: the writer's check-then-scan order
                // guarantees one of us observes the other.
                return;
            }
            // Retreat so the writer's scan can finish, then wait it out.
            // Relaxed: the reader is not in the CS, so there is nothing to
            // publish; coherence alone delivers the lowered flag to the
            // writer's Acquire scan.
            flag.store(false, Ordering::Relaxed);
            // Acquire pairs with the writer's Release in write_unlock so the
            // reader's critical-section reads see the writer's writes.
            spin_until(|| !self.writer_present.load(Ordering::Acquire));
        }
    }

    fn read_unlock(&self, pid: Pid, (): ()) {
        // Release: the writer's Acquire scan must order this reader's
        // critical-section reads before the writer's subsequent writes.
        self.reader_flags[pid.index()].store(false, Ordering::Release);
    }

    fn write_lock(&self, _pid: Pid) {
        self.writer_mutex.lock();
        // Store half of site BL-FLAGS (see read_lock): SeqCst so it cannot
        // pass the flag scan below.
        self.writer_present.store(true, Ordering::SeqCst);
        // O(n): drain every reader slot. Acquire pairs with the readers'
        // Release in read_unlock.
        for flag in self.reader_flags.iter() {
            spin_until(|| !flag.load(Ordering::Acquire));
        }
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        // Release publishes the writer's critical-section writes to readers
        // spinning on writer_present with Acquire.
        self.writer_present.store(false, Ordering::Release);
        self.writer_mutex.unlock(());
    }

    fn max_processes(&self) -> usize {
        self.reader_flags.len()
    }
}

// SAFETY: writers serialize through `writer_mutex` for the whole critical
// section.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for DistributedFlagRwLock<B> {}

impl<B: Backend> RawTryReadLock for DistributedFlagRwLock<B> {
    fn try_read_lock(&self, pid: Pid) -> Option<()> {
        let flag = &self.reader_flags[pid.index()];
        // One round of the blocking loop, with "park" replaced by "abort":
        // flag-then-check keeps the same visibility argument (site BL-FLAGS).
        flag.store(true, Ordering::SeqCst);
        if !self.writer_present.load(Ordering::SeqCst) {
            Some(())
        } else {
            // Abort: nothing to publish (never entered the CS).
            flag.store(false, Ordering::Relaxed);
            None
        }
    }
}

impl<B: Backend> RawTryRwLock for DistributedFlagRwLock<B> {
    fn try_write_lock(&self, _pid: Pid) -> Option<()> {
        if !self.writer_mutex.try_lock() {
            return None;
        }
        self.writer_present.store(true, Ordering::SeqCst); // site BL-FLAGS
                                                           // One scan instead of n spin-waits; any raised flag aborts. Acquire
                                                           // pairs with the readers' Release in read_unlock.
        if self.reader_flags.iter().any(|f| f.load(Ordering::Acquire)) {
            // Abort: the writer wrote nothing, so there is nothing to
            // publish; coherence delivers the lowered flag.
            self.writer_present.store(false, Ordering::Relaxed);
            self.writer_mutex.unlock(());
            return None;
        }
        Some(())
    }
}

rmr_core::advisory_parked_waiters! {
    /// Advisory doorway (`QUEUED = false`): a parked writer holds neither
    /// the writer mutex nor the `writer_present` flag, so readers stream
    /// past with no bypass bound.
    impl[B: Backend] RawParkedWaiters for DistributedFlagRwLock<B>
}

impl<B: Backend> fmt::Debug for DistributedFlagRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedFlagRwLock")
            .field("slots", &self.reader_flags.len())
            .field("readers_visible", &self.readers_visible())
            .field("writer_present", &self.writer_present.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn reader_alone_is_wait_free() {
        let lock = DistributedFlagRwLock::new(4);
        for _ in 0..100 {
            let t = lock.read_lock(pid(2));
            lock.read_unlock(pid(2), t);
        }
        assert_eq!(lock.readers_visible(), 0);
    }

    #[test]
    fn readers_overlap() {
        let lock = DistributedFlagRwLock::new(4);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        assert_eq!(lock.readers_visible(), 2);
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
    }

    #[test]
    fn writer_waits_for_reader() {
        let lock = Arc::new(DistributedFlagRwLock::new(4));
        let r = lock.read_lock(pid(0));
        let entered = Arc::new(AtomicBool::new(false));
        let lw = Arc::clone(&lock);
        let e2 = Arc::clone(&entered);
        let w = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            e2.store(true, Ordering::SeqCst);
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!entered.load(Ordering::SeqCst));
        lock.read_unlock(pid(0), r);
        w.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(DistributedFlagRwLock::new(8), 2, 4, 100);
    }
}
