//! Courtois, Heymans & Parnas's *second* readers-writers problem (1971):
//! the classic writer-preference construction.

use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedWord};
use rmr_mutex::{RawMutex, TtasLock};
use std::fmt;

/// The 1971 writer-preference solution, transcribed from the original
/// five-semaphore construction (semaphores modeled as TTAS mutexes, which
/// is how it is deployed on spinning shared-memory systems):
///
/// * writers raise a write-request count; the first writer in locks out
///   new readers via `read_gate`, the last writer out reopens it;
/// * readers pass through `entry_gate` + `read_gate` one at a time, so a
///   waiting writer blocks the *entire* future reader stream (writer
///   preference), and reader entries serialize — no concurrent entering,
///   O(n) RMRs per batch.
///
/// This is the historical counterpart to [`crate::CentralizedRwLock`]
/// (which is the first problem / reader preference), completing the 1971
/// baseline pair the paper's introduction starts from.
///
/// # Example
///
/// ```
/// use rmr_baselines::CourtoisWriterPrefRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = CourtoisWriterPrefRwLock::new(4);
/// let t = lock.write_lock(Pid::from_index(0));
/// lock.write_unlock(Pid::from_index(0), t);
/// ```
pub struct CourtoisWriterPrefRwLock<B: Backend = Native> {
    /// Protects `read_count` (the paper's `mutex 1`).
    read_count_mutex: TtasLock<B>,
    read_count: B::Word,
    /// Protects `write_count` (the paper's `mutex 2`).
    write_count_mutex: TtasLock<B>,
    write_count: B::Word,
    /// Serializes readers through the entry protocol (the paper's
    /// `mutex 3`) so a writer's arrival cannot be outrun by a reader
    /// convoy.
    entry_gate: TtasLock<B>,
    /// Blocks new readers while any writer waits or works (the paper's
    /// semaphore `r`).
    read_gate: TtasLock<B>,
    /// The resource itself (the paper's semaphore `w`).
    resource: TtasLock<B>,
    max_processes: usize,
}

impl CourtoisWriterPrefRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> CourtoisWriterPrefRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`CourtoisWriterPrefRwLock::new`]).
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self {
            read_count_mutex: TtasLock::new_in(backend),
            read_count: B::Word::new(0),
            write_count_mutex: TtasLock::new_in(backend),
            write_count: B::Word::new(0),
            entry_gate: TtasLock::new_in(backend),
            read_gate: TtasLock::new_in(backend),
            resource: TtasLock::new_in(backend),
            max_processes,
        }
    }

    /// Number of writers waiting or writing (diagnostic).
    pub fn writers_interested(&self) -> u64 {
        self.write_count.load(Ordering::Relaxed)
    }
}

impl<B: Backend> RawRwLock for CourtoisWriterPrefRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, _pid: Pid) {
        self.entry_gate.lock();
        self.read_gate.lock();
        self.read_count_mutex.lock();
        // Relaxed: read_count is only ever touched under read_count_mutex,
        // whose Acquire/Release handoff already orders the accesses.
        if self.read_count.fetch_add(1, Ordering::Relaxed) == 0 {
            self.resource.lock();
        }
        self.read_count_mutex.unlock(());
        self.read_gate.unlock(());
        self.entry_gate.unlock(());
    }

    fn read_unlock(&self, _pid: Pid, (): ()) {
        self.read_count_mutex.lock();
        // Relaxed: protected by read_count_mutex (see read_lock).
        if self.read_count.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.resource.unlock(());
        }
        self.read_count_mutex.unlock(());
    }

    fn write_lock(&self, _pid: Pid) {
        self.write_count_mutex.lock();
        // Relaxed: write_count is only ever touched under write_count_mutex.
        if self.write_count.fetch_add(1, Ordering::Relaxed) == 0 {
            // First interested writer shuts the reader gate.
            self.read_gate.lock();
        }
        self.write_count_mutex.unlock(());
        self.resource.lock();
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        self.resource.unlock(());
        self.write_count_mutex.lock();
        // Relaxed: protected by write_count_mutex (see write_lock).
        if self.write_count.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last interested writer reopens the reader gate.
            self.read_gate.unlock(());
        }
        self.write_count_mutex.unlock(());
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: every writer takes the `resource` semaphore for the whole
// critical section, excluding all other writers.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for CourtoisWriterPrefRwLock<B> {}

impl<B: Backend> fmt::Debug for CourtoisWriterPrefRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CourtoisWriterPrefRwLock")
            .field("readers_inside", &self.read_count.load(Ordering::Relaxed))
            .field("writers_interested", &self.writers_interested())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::AtomicBool;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn cycles_single_thread() {
        let lock = CourtoisWriterPrefRwLock::new(2);
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
            let t = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), t);
        }
        assert_eq!(lock.writers_interested(), 0);
    }

    #[test]
    fn readers_overlap() {
        let lock = CourtoisWriterPrefRwLock::new(4);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        // Writer preference: once a writer waits, a brand-new reader must
        // queue behind it even though a reader currently holds the lock.
        let lock = Arc::new(CourtoisWriterPrefRwLock::new(4));
        let r1 = lock.read_lock(pid(0));

        let w_in = Arc::new(AtomicBool::new(false));
        let lw = Arc::clone(&lock);
        let w_in2 = Arc::clone(&w_in);
        let writer = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            w_in2.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!w_in.load(Ordering::SeqCst), "writer entered over a live reader");

        let r2_in = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let r2_in2 = Arc::clone(&r2_in);
        let reader2 = std::thread::spawn(move || {
            let t = lr.read_lock(pid(2));
            r2_in2.store(true, Ordering::SeqCst);
            lr.read_unlock(pid(2), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !r2_in.load(Ordering::SeqCst),
            "reader overtook a waiting writer (writer preference violated)"
        );

        lock.read_unlock(pid(0), r1);
        writer.join().unwrap();
        reader2.join().unwrap();
        assert!(r2_in.load(Ordering::SeqCst));
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(CourtoisWriterPrefRwLock::new(8), 2, 4, 100);
    }
}
