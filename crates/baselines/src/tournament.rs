//! Counting-tree reader-writer lock: the Θ(log n) RMR comparator.

use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedBool, SharedWord};
use rmr_mutex::CachePadded;
use rmr_mutex::{spin_until, RawMutex, TtasLock};
use std::fmt;

/// A reader-writer lock whose readers announce themselves through a binary
/// **counting tree**: each reader increments one counter per level on the
/// path from its leaf to the root (and decrements on exit), paying
/// **Θ(log n) RMRs per attempt**. The writer serializes through a mutex,
/// raises a global flag, and waits for the root count to drain.
///
/// This is the stand-in for the Danek–Hadzilacos O(log n) RMR bound \[5\] —
/// the best previously known for cache-coherent machines, which Theorems
/// 1–5 improve to O(1). The tree structure reproduces the *complexity
/// class* (logarithmic remote references per reader attempt, visible in
/// experiment E7) rather than the full group-mutual-exclusion machinery of
/// \[5\]; DESIGN.md §4 records this substitution.
///
/// Writer preference: readers that observe the writer flag retreat down
/// the tree (decrementing) and park until the flag drops.
///
/// # Example
///
/// ```
/// use rmr_baselines::TournamentRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = TournamentRwLock::new(8);
/// assert_eq!(lock.levels(), 4);
/// let t = lock.read_lock(Pid::from_index(5));
/// lock.read_unlock(Pid::from_index(5), t);
/// ```
pub struct TournamentRwLock<B: Backend = Native> {
    /// Heap-indexed complete binary tree: node 1 is the root, leaves are
    /// `leaf_base..leaf_base * 2`. Each node counts the readers currently
    /// registered somewhere in its subtree.
    nodes: Box<[CachePadded<B::Word>]>,
    /// Number of leaves (`max_processes` rounded up to a power of two).
    leaf_base: usize,
    /// Serializes writers.
    writer_mutex: TtasLock<B>,
    /// Raised while a writer is draining readers or in the CS.
    writer_present: B::Bool,
    max_processes: usize,
}

impl TournamentRwLock {
    /// Creates the lock for up to `max_processes` processes.
    ///
    /// # Panics
    ///
    /// Panics if `max_processes == 0`.
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> TournamentRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`TournamentRwLock::new`]).
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        let leaf_base = max_processes.next_power_of_two().max(2);
        Self {
            nodes: (0..2 * leaf_base).map(|_| CachePadded::new(B::Word::new(0))).collect(),
            leaf_base,
            writer_mutex: TtasLock::new_in(backend),
            writer_present: B::Bool::new(false),
            max_processes,
        }
    }

    /// Tree height = number of counters a reader touches per attempt.
    pub fn levels(&self) -> u32 {
        self.leaf_base.trailing_zeros() + 1
    }

    /// Number of readers currently registered at the root (diagnostic).
    pub fn root_count(&self) -> u64 {
        self.nodes[1].load(Ordering::Relaxed)
    }

    fn leaf_of(&self, pid: Pid) -> usize {
        assert!(pid.index() < self.max_processes, "pid beyond lock capacity");
        self.leaf_base + pid.index() % self.leaf_base
    }

    /// Increments every counter from `leaf` up to the root.
    fn climb(&self, leaf: usize) {
        let mut node = leaf;
        while node >= 1 {
            // Only the root participates in the register-then-check Dekker
            // square with the writer (site BL-TREE); the lower counters
            // exist for the Θ(log n) RMR cost profile and carry no
            // synchronization.
            let order = if node == 1 { Ordering::SeqCst } else { Ordering::Relaxed };
            self.nodes[node].fetch_add(1, order);
            node /= 2;
        }
    }

    /// Decrements every counter from `leaf` up to the root.
    fn descend(&self, leaf: usize) {
        let mut node = leaf;
        while node >= 1 {
            // Release at the root: on the exit path the writer's Acquire
            // drain spin must order this reader's critical-section reads
            // before the writer's writes. (The retreat path shares the
            // helper and needs nothing; lower counters are cost-model-only.)
            let order = if node == 1 { Ordering::Release } else { Ordering::Relaxed };
            self.nodes[node].fetch_sub(1, order);
            node /= 2;
        }
    }
}

impl<B: Backend> RawRwLock for TournamentRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, pid: Pid) {
        let leaf = self.leaf_of(pid);
        loop {
            self.climb(leaf);
            // Site BL-TREE: register-then-check vs. the writer's
            // flag-then-drain — SeqCst on the root RMW and on this load
            // guarantees one side observes the other.
            if !self.writer_present.load(Ordering::SeqCst) {
                return;
            }
            self.descend(leaf);
            // Acquire pairs with the writer's Release in write_unlock.
            spin_until(|| !self.writer_present.load(Ordering::Acquire));
        }
    }

    fn read_unlock(&self, pid: Pid, (): ()) {
        self.descend(self.leaf_of(pid));
    }

    fn write_lock(&self, _pid: Pid) {
        self.writer_mutex.lock();
        // Store half of site BL-TREE: SeqCst so it cannot pass the drain
        // scan below.
        self.writer_present.store(true, Ordering::SeqCst);
        // Acquire pairs with the readers' Release root decrements.
        spin_until(|| self.nodes[1].load(Ordering::Acquire) == 0);
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        // Release publishes the writer's critical-section writes to readers
        // spinning on writer_present with Acquire.
        self.writer_present.store(false, Ordering::Release);
        self.writer_mutex.unlock(());
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: writers serialize through `writer_mutex` for the whole critical
// section.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for TournamentRwLock<B> {}

impl<B: Backend> RawTryReadLock for TournamentRwLock<B> {
    fn try_read_lock(&self, pid: Pid) -> Option<()> {
        let leaf = self.leaf_of(pid);
        // One round of the blocking loop; "park" becomes "abort".
        self.climb(leaf);
        if !self.writer_present.load(Ordering::SeqCst) {
            // Site BL-TREE, as in read_lock.
            Some(())
        } else {
            self.descend(leaf);
            None
        }
    }
}

impl<B: Backend> RawTryRwLock for TournamentRwLock<B> {
    fn try_write_lock(&self, _pid: Pid) -> Option<()> {
        if !self.writer_mutex.try_lock() {
            return None;
        }
        self.writer_present.store(true, Ordering::SeqCst); // site BL-TREE
                                                           // One root test instead of the drain spin; registered readers abort.
                                                           // Acquire pairs with the readers' Release root decrements.
        if self.nodes[1].load(Ordering::Acquire) != 0 {
            // Abort: the writer wrote nothing, so nothing to publish.
            self.writer_present.store(false, Ordering::Relaxed);
            self.writer_mutex.unlock(());
            return None;
        }
        Some(())
    }
}

rmr_core::advisory_parked_waiters! {
    /// Advisory doorway (`QUEUED = false`): a parked writer holds neither
    /// the writer mutex nor the root test, so readers stream past with no
    /// bypass bound.
    impl[B: Backend] RawParkedWaiters for TournamentRwLock<B>
}

impl<B: Backend> fmt::Debug for TournamentRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TournamentRwLock")
            .field("levels", &self.levels())
            .field("root_count", &self.root_count())
            .field("writer_present", &self.writer_present.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn levels_grow_logarithmically() {
        assert_eq!(TournamentRwLock::new(2).levels(), 2);
        assert_eq!(TournamentRwLock::new(4).levels(), 3);
        assert_eq!(TournamentRwLock::new(8).levels(), 4);
        assert_eq!(TournamentRwLock::new(64).levels(), 7);
    }

    #[test]
    fn climb_descend_balance() {
        let lock = TournamentRwLock::new(8);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(5));
        assert_eq!(lock.root_count(), 2);
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(5), b);
        assert_eq!(lock.root_count(), 0);
        for node in lock.nodes.iter() {
            assert_eq!(node.load(Ordering::SeqCst), 0, "leaked tree count");
        }
    }

    #[test]
    fn writer_waits_for_root_drain() {
        let lock = Arc::new(TournamentRwLock::new(4));
        let r = lock.read_lock(pid(0));
        let entered = Arc::new(AtomicBool::new(false));
        let lw = Arc::clone(&lock);
        let e2 = Arc::clone(&entered);
        let w = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            e2.store(true, Ordering::SeqCst);
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!entered.load(Ordering::SeqCst));
        lock.read_unlock(pid(0), r);
        w.join().unwrap();
        assert!(entered.load(Ordering::SeqCst));
    }

    #[test]
    fn readers_retreat_for_writer_then_reenter() {
        let lock = Arc::new(TournamentRwLock::new(4));
        let t = lock.write_lock(pid(0));
        let lr = Arc::clone(&lock);
        let reader = std::thread::spawn(move || {
            let t = lr.read_lock(pid(1));
            lr.read_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        lock.write_unlock(pid(0), t);
        reader.join().unwrap();
        assert_eq!(lock.root_count(), 0);
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(TournamentRwLock::new(8), 2, 4, 100);
    }
}
