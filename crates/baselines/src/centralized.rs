//! The original Courtois–Heymans–Parnas reader-writer solution (1971).

use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedWord};
use rmr_mutex::{RawMutex, TtasLock};
use std::fmt;

/// The classic "first readers-writers problem" solution of Courtois,
/// Heymans & Parnas \[1\]: a reader count protected by a mutex, with the
/// first reader in / last reader out acquiring and releasing the resource
/// mutex that writers take directly.
///
/// Reader-preference semantics: once readers occupy the critical section,
/// a steady stream of them starves writers. Every reader entry **and**
/// exit goes through the count mutex, so readers serialize on the lock
/// word — concurrent entering (P5) fails under contention and the RMR
/// complexity is O(n) per batch in the CC model. This is the paper's
/// negative baseline from the 1971 starting point of the literature.
///
/// # Example
///
/// ```
/// use rmr_baselines::CentralizedRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = CentralizedRwLock::new(4);
/// let t = lock.read_lock(Pid::from_index(0));
/// lock.read_unlock(Pid::from_index(0), t);
/// ```
pub struct CentralizedRwLock<B: Backend = Native> {
    /// Protects `read_count` (the paper's semaphore `mutex`).
    count_mutex: TtasLock<B>,
    /// Number of readers currently inside.
    read_count: B::Word,
    /// Held by the writer, or by the reader group while any reader is in
    /// (the paper's semaphore `w`).
    resource: TtasLock<B>,
    max_processes: usize,
}

impl CentralizedRwLock {
    /// Creates the lock for up to `max_processes` processes (the bound is
    /// nominal — this algorithm has no per-process state — but kept for
    /// interface parity).
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> CentralizedRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`CentralizedRwLock::new`]).
    pub fn new_in(max_processes: usize, backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self {
            count_mutex: TtasLock::new_in(backend),
            read_count: B::Word::new(0),
            resource: TtasLock::new_in(backend),
            max_processes,
        }
    }

    /// Number of readers currently in the critical section (diagnostic).
    pub fn readers_inside(&self) -> u64 {
        self.read_count.load(Ordering::Relaxed)
    }
}

impl<B: Backend> RawRwLock for CentralizedRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, _pid: Pid) {
        let m = self.count_mutex.lock();
        // Relaxed: every access to read_count happens under count_mutex,
        // whose Acquire/Release handoff already orders them; the RMW is only
        // for interface parity with the lock-free diagnostics read.
        if self.read_count.fetch_add(1, Ordering::Relaxed) == 0 {
            // First reader locks the resource on behalf of the group.
            let r = self.resource.lock();
            // TtasLock tokens are zero-sized; ownership transfers to the
            // group and is released by the last reader out.
            let () = r;
        }
        self.count_mutex.unlock(m);
    }

    fn read_unlock(&self, _pid: Pid, (): ()) {
        let m = self.count_mutex.lock();
        // Relaxed: protected by count_mutex (see read_lock).
        if self.read_count.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last reader out releases the resource.
            self.resource.unlock(());
        }
        self.count_mutex.unlock(m);
    }

    fn write_lock(&self, _pid: Pid) {
        self.resource.lock();
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        self.resource.unlock(());
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: every writer takes the `resource` mutex for the whole critical
// section, excluding all other writers.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for CentralizedRwLock<B> {}

impl<B: Backend> RawTryReadLock for CentralizedRwLock<B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<()> {
        if !self.count_mutex.try_lock() {
            return None;
        }
        // Relaxed: protected by count_mutex (see read_lock).
        let granted = if self.read_count.fetch_add(1, Ordering::Relaxed) == 0 {
            // First reader must take the resource on the group's behalf; if
            // a writer holds it, undo the registration.
            let ok = self.resource.try_lock();
            if !ok {
                self.read_count.fetch_sub(1, Ordering::Relaxed);
            }
            ok
        } else {
            true
        };
        self.count_mutex.unlock(());
        granted.then_some(())
    }
}

impl<B: Backend> RawTryRwLock for CentralizedRwLock<B> {
    fn try_write_lock(&self, _pid: Pid) -> Option<()> {
        self.resource.try_lock().then_some(())
    }
}

rmr_core::advisory_parked_waiters! {
    /// Advisory doorway (`QUEUED = false`): the centralized counter keeps
    /// no writer queue to park in, so `write().await` polls `try_write`
    /// with no bypass bound.
    impl[B: Backend] RawParkedWaiters for CentralizedRwLock<B>
}

impl<B: Backend> fmt::Debug for CentralizedRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CentralizedRwLock")
            .field("readers_inside", &self.readers_inside())
            .field("max_processes", &self.max_processes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn read_write_cycles() {
        let lock = CentralizedRwLock::new(2);
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
            let t = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), t);
        }
        assert_eq!(lock.readers_inside(), 0);
    }

    #[test]
    fn readers_overlap() {
        let lock = CentralizedRwLock::new(4);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        assert_eq!(lock.readers_inside(), 2);
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
    }

    #[test]
    fn writer_excluded_while_reader_inside() {
        let lock = Arc::new(CentralizedRwLock::new(4));
        let r = lock.read_lock(pid(0));
        let lw = Arc::clone(&lock);
        let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let e2 = Arc::clone(&entered);
        let w = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            e2.store(true, Ordering::SeqCst);
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!entered.load(Ordering::SeqCst));
        lock.read_unlock(pid(0), r);
        w.join().unwrap();
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(CentralizedRwLock::new(8), 2, 4, 100);
    }
}
