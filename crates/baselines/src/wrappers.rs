//! Production-lock adapters for the throughput benchmarks.
//!
//! Historical note: an adapter over `parking_lot::RawRwLock` used to live
//! here as a second production comparator. The workspace is built fully
//! offline with no external dependencies, so that adapter was dropped;
//! [`StdRwLock`] remains the production OS-grade baseline for E11.

use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use std::fmt;

/// [`std::sync::RwLock`]-backed adapter for the throughput benchmarks
/// (E11).
///
/// The token smuggles the guard with an erased lifetime; this is sound
/// because [`RawRwLock`]'s contract already requires every token to be
/// returned to the lock it came from before the lock is dropped.
pub struct StdRwLock {
    inner: std::sync::RwLock<()>,
    max_processes: usize,
}

/// Proof of a held `std` read lock.
pub struct StdReadToken {
    _guard: std::sync::RwLockReadGuard<'static, ()>,
}

/// Proof of a held `std` write lock.
pub struct StdWriteToken {
    _guard: std::sync::RwLockWriteGuard<'static, ()>,
}

impl fmt::Debug for StdReadToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StdReadToken")
    }
}

impl fmt::Debug for StdWriteToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StdWriteToken")
    }
}

impl StdRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    pub fn new(max_processes: usize) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self { inner: std::sync::RwLock::new(()), max_processes }
    }
}

fn erase_read(guard: std::sync::RwLockReadGuard<'_, ()>) -> StdReadToken {
    // SAFETY: lifetime erasure only; the RawRwLock contract guarantees the
    // token is consumed by `read_unlock` on this same lock, which the
    // caller keeps alive until then.
    StdReadToken {
        _guard: unsafe {
            std::mem::transmute::<
                std::sync::RwLockReadGuard<'_, ()>,
                std::sync::RwLockReadGuard<'static, ()>,
            >(guard)
        },
    }
}

fn erase_write(guard: std::sync::RwLockWriteGuard<'_, ()>) -> StdWriteToken {
    // SAFETY: as in `erase_read`.
    StdWriteToken {
        _guard: unsafe {
            std::mem::transmute::<
                std::sync::RwLockWriteGuard<'_, ()>,
                std::sync::RwLockWriteGuard<'static, ()>,
            >(guard)
        },
    }
}

impl RawRwLock for StdRwLock {
    type ReadToken = StdReadToken;
    type WriteToken = StdWriteToken;

    fn read_lock(&self, _pid: Pid) -> StdReadToken {
        erase_read(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn read_unlock(&self, _pid: Pid, token: StdReadToken) {
        drop(token);
    }

    fn write_lock(&self, _pid: Pid) -> StdWriteToken {
        erase_write(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }

    fn write_unlock(&self, _pid: Pid, token: StdWriteToken) {
        drop(token);
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: std::sync::RwLock provides writer-writer exclusion for any
// number of concurrent callers.
unsafe impl rmr_core::raw::RawMultiWriter for StdRwLock {}

impl RawTryReadLock for StdRwLock {
    fn try_read_lock(&self, _pid: Pid) -> Option<StdReadToken> {
        match self.inner.try_read() {
            Ok(guard) => Some(erase_read(guard)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(erase_read(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl RawTryRwLock for StdRwLock {
    fn try_write_lock(&self, _pid: Pid) -> Option<StdWriteToken> {
        match self.inner.try_write() {
            Ok(guard) => Some(erase_write(guard)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(erase_write(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

rmr_core::advisory_parked_waiters! {
    /// Advisory doorway (`QUEUED = false`): `std`'s `RwLock` exposes no
    /// queued-intent handle, so `write().await` polls `try_write` with no
    /// bypass bound.
    impl[] RawParkedWaiters for StdRwLock
}

impl fmt::Debug for StdRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdRwLock").field("max_processes", &self.max_processes).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn std_cycles() {
        let lock = StdRwLock::new(2);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
        let w = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), w);
    }

    #[test]
    fn std_try_tier() {
        let lock = StdRwLock::new(2);
        let w = lock.try_write_lock(pid(0)).expect("uncontended");
        assert!(lock.try_read_lock(pid(1)).is_none(), "writer held");
        assert!(lock.try_write_lock(pid(1)).is_none(), "writer held");
        lock.write_unlock(pid(0), w);
        let r = lock.try_read_lock(pid(0)).expect("free again");
        assert!(lock.try_write_lock(pid(1)).is_none(), "reader held");
        lock.read_unlock(pid(0), r);
    }

    #[test]
    fn std_exclusion_stress() {
        rw_exclusion_stress(StdRwLock::new(8), 2, 4, 200);
    }
}
