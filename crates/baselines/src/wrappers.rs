//! Production-lock adapters for the throughput benchmarks.

use rmr_core::raw::RawRwLock;
use rmr_core::registry::Pid;
use std::fmt;

/// [`parking_lot::RwLock`]-backed adapter (via its raw lock), so the
/// benchmark harness can sweep a production OS-grade lock alongside the
/// paper's algorithms. RMR accounting does not apply (it parks threads);
/// this type exists for wall-clock throughput comparison only (E11).
///
/// # Example
///
/// ```
/// use rmr_baselines::ParkingLotRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = ParkingLotRwLock::new(4);
/// let t = lock.read_lock(Pid::from_index(0));
/// lock.read_unlock(Pid::from_index(0), t);
/// ```
pub struct ParkingLotRwLock {
    raw: parking_lot::RawRwLock,
    max_processes: usize,
}

impl ParkingLotRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    pub fn new(max_processes: usize) -> Self {
        use parking_lot::lock_api::RawRwLock as _;
        assert!(max_processes > 0, "max_processes must be positive");
        Self { raw: parking_lot::RawRwLock::INIT, max_processes }
    }
}

impl RawRwLock for ParkingLotRwLock {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, _pid: Pid) {
        use parking_lot::lock_api::RawRwLock as _;
        self.raw.lock_shared();
    }

    fn read_unlock(&self, _pid: Pid, (): ()) {
        use parking_lot::lock_api::RawRwLock as _;
        // SAFETY: paired with the `lock_shared` in `read_lock`; the
        // RawRwLock contract requires callers to match lock/unlock.
        unsafe { self.raw.unlock_shared() };
    }

    fn write_lock(&self, _pid: Pid) {
        use parking_lot::lock_api::RawRwLock as _;
        self.raw.lock_exclusive();
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        use parking_lot::lock_api::RawRwLock as _;
        // SAFETY: paired with the `lock_exclusive` in `write_lock`.
        unsafe { self.raw.unlock_exclusive() };
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

impl fmt::Debug for ParkingLotRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParkingLotRwLock")
            .field("max_processes", &self.max_processes)
            .finish()
    }
}

/// [`std::sync::RwLock`]-backed adapter for the throughput benchmarks
/// (E11).
///
/// The token smuggles the guard with an erased lifetime; this is sound
/// because [`RawRwLock`]'s contract already requires every token to be
/// returned to the lock it came from before the lock is dropped.
pub struct StdRwLock {
    inner: std::sync::RwLock<()>,
    max_processes: usize,
}

/// Proof of a held `std` read lock.
pub struct StdReadToken {
    _guard: std::sync::RwLockReadGuard<'static, ()>,
}

/// Proof of a held `std` write lock.
pub struct StdWriteToken {
    _guard: std::sync::RwLockWriteGuard<'static, ()>,
}

impl fmt::Debug for StdReadToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StdReadToken")
    }
}

impl fmt::Debug for StdWriteToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StdWriteToken")
    }
}

impl StdRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    pub fn new(max_processes: usize) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self { inner: std::sync::RwLock::new(()), max_processes }
    }
}

impl RawRwLock for StdRwLock {
    type ReadToken = StdReadToken;
    type WriteToken = StdWriteToken;

    fn read_lock(&self, _pid: Pid) -> StdReadToken {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: lifetime erasure only; the RawRwLock contract guarantees
        // the token is consumed by `read_unlock` on this same lock, which
        // the caller keeps alive until then.
        StdReadToken {
            _guard: unsafe {
                std::mem::transmute::<
                    std::sync::RwLockReadGuard<'_, ()>,
                    std::sync::RwLockReadGuard<'static, ()>,
                >(guard)
            },
        }
    }

    fn read_unlock(&self, _pid: Pid, token: StdReadToken) {
        drop(token);
    }

    fn write_lock(&self, _pid: Pid) -> StdWriteToken {
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: as in `read_lock`.
        StdWriteToken {
            _guard: unsafe {
                std::mem::transmute::<
                    std::sync::RwLockWriteGuard<'_, ()>,
                    std::sync::RwLockWriteGuard<'static, ()>,
                >(guard)
            },
        }
    }

    fn write_unlock(&self, _pid: Pid, token: StdWriteToken) {
        drop(token);
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

impl fmt::Debug for StdRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdRwLock").field("max_processes", &self.max_processes).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn parking_lot_cycles() {
        let lock = ParkingLotRwLock::new(2);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
        let w = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), w);
    }

    #[test]
    fn std_cycles() {
        let lock = StdRwLock::new(2);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1));
        lock.read_unlock(pid(0), a);
        lock.read_unlock(pid(1), b);
        let w = lock.write_lock(pid(0));
        lock.write_unlock(pid(0), w);
    }

    #[test]
    fn parking_lot_exclusion_stress() {
        rw_exclusion_stress(ParkingLotRwLock::new(8), 2, 4, 200);
    }

    #[test]
    fn std_exclusion_stress() {
        rw_exclusion_stress(StdRwLock::new(8), 2, 4, 200);
    }
}
