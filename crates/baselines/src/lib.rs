//! Baseline reader-writer locks the paper's algorithms are compared
//! against.
//!
//! Bhatt & Jayanti position their result against two families of prior
//! reader-writer locks: those that *fail concurrent entering* (readers
//! serialize through a mutex — Courtois et al. \[1\], Mellor-Crummey & Scott
//! \[9\], and the ticket-style locks) and those with *non-constant RMR
//! complexity* (O(log n) for Danek–Hadzilacos \[5\], O(n) for the
//! distributed-flag designs \[24, 25\]). This crate implements a
//! representative of each class behind the same
//! [`RawRwLock`](rmr_core::raw::RawRwLock) trait as the paper's locks, so
//! the experiment harness can sweep them side by side:
//!
//! | Type | Stands in for | RMR complexity (CC) |
//! |---|---|---|
//! | [`CentralizedRwLock`] | Courtois et al. 1971, problem 1 (reader pref.) \[1\] | O(n) (mutex on every reader entry/exit) |
//! | [`CourtoisWriterPrefRwLock`] | Courtois et al. 1971, problem 2 (writer pref.) \[1\] | O(n), readers fully serialized |
//! | [`TicketRwLock`] | task-fair ticket/queue RW locks \[9, 10\] | O(n) per handoff (shared grant word) |
//! | [`DistributedFlagRwLock`] | per-reader-flag designs \[24, 25\] | reader O(1)*, writer O(n) |
//! | [`TournamentRwLock`] | Danek–Hadzilacos-style tree locks \[5\] | Θ(log n) readers |
//! | [`StdRwLock`] | production OS-backed lock | n/a (throughput benches only) |
//!
//! # Non-blocking tier
//!
//! Every baseline except [`CourtoisWriterPrefRwLock`] implements the full
//! [`RawTryRwLock`](rmr_core::raw::RawTryRwLock) capability (bounded
//! `try_read_lock` **and** `try_write_lock`) — their mutex-and-counter
//! write paths revoke cleanly, unlike the paper's irrevocable writer
//! doorways. The Courtois writer-preference construction threads every
//! attempt through a chain of five semaphores whose partial acquisitions
//! cannot be rolled back atomically, so it stays blocking-only.
//!
//! `*` readers of [`DistributedFlagRwLock`] pay O(1) RMRs only while no
//! writer is active.
//!
//! All types here are **comparators**: correct (mutual exclusion holds, and
//! the test suite stresses it) but intentionally representative of their
//! class's weaknesses — e.g. [`CentralizedRwLock`] has no concurrent
//! entering under contention, and [`TournamentRwLock`] trades reader
//! concurrency bookkeeping for Θ(log n) remote references.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Several baselines have zero-sized lock tokens; binding them keeps call
// sites uniform with the token-carrying locks.
#![allow(clippy::let_unit_value)]

mod centralized;
mod courtois_wp;
mod flags;
mod ticket_rw;
mod tournament;
mod wrappers;

pub use centralized::CentralizedRwLock;
pub use courtois_wp::CourtoisWriterPrefRwLock;
pub use flags::DistributedFlagRwLock;
pub use ticket_rw::TicketRwLock;
pub use tournament::TournamentRwLock;
pub use wrappers::StdRwLock;

#[cfg(test)]
mod try_tier_tests {
    use super::*;
    // RawTryRwLock's supertraits (RawRwLock, RawTryReadLock) come along
    // for method resolution.
    use rmr_core::raw::RawTryRwLock;
    use rmr_core::registry::Pid;

    /// The non-blocking contract, exercised on one thread (which *proves*
    /// boundedness: a blocking attempt would deadlock against our own held
    /// token):
    /// a held write lock denies both tries; a held read lock denies
    /// `try_write` but admits `try_read`; a free lock admits both.
    fn try_tier_contract<L: RawTryRwLock>(lock: L) {
        let p = Pid::from_index;
        let w = lock.write_lock(p(0));
        assert!(lock.try_read_lock(p(1)).is_none(), "try_read under writer");
        assert!(lock.try_write_lock(p(1)).is_none(), "try_write under writer");
        lock.write_unlock(p(0), w);

        let r = lock.try_read_lock(p(1)).expect("free lock admits try_read");
        assert!(lock.try_write_lock(p(2)).is_none(), "try_write under reader");
        let r2 = lock.try_read_lock(p(2)).expect("readers share");
        lock.read_unlock(p(2), r2);
        lock.read_unlock(p(1), r);

        let w = lock.try_write_lock(p(0)).expect("free lock admits try_write");
        lock.write_unlock(p(0), w);
    }

    #[test]
    fn centralized_try_tier() {
        try_tier_contract(CentralizedRwLock::new(4));
    }

    #[test]
    fn ticket_try_tier() {
        try_tier_contract(TicketRwLock::new(4));
    }

    #[test]
    fn distributed_flag_try_tier() {
        try_tier_contract(DistributedFlagRwLock::new(4));
    }

    #[test]
    fn tournament_try_tier() {
        try_tier_contract(TournamentRwLock::new(4));
    }

    #[test]
    fn std_try_tier_shared() {
        try_tier_contract(StdRwLock::new(4));
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use rmr_core::raw::RawRwLock;
    use rmr_core::registry::Pid;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Shared exclusion stress: readers overlap freely, writers exclude all.
    pub(crate) fn rw_exclusion_stress<L>(lock: L, writers: usize, readers: usize, iters: usize)
    where
        L: RawRwLock + 'static,
    {
        let lock = Arc::new(lock);
        let readers_in = Arc::new(AtomicUsize::new(0));
        let writers_in = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..writers {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                let pid = Pid::from_index(i);
                for _ in 0..iters {
                    let t = lock.write_lock(pid);
                    assert_eq!(writers_in.fetch_add(1, Ordering::SeqCst), 0, "two writers in CS");
                    assert_eq!(readers_in.load(Ordering::SeqCst), 0, "reader with writer");
                    writers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.write_unlock(pid, t);
                }
            }));
        }
        for i in writers..writers + readers {
            let lock = Arc::clone(&lock);
            let readers_in = Arc::clone(&readers_in);
            let writers_in = Arc::clone(&writers_in);
            handles.push(std::thread::spawn(move || {
                let pid = Pid::from_index(i);
                for _ in 0..iters {
                    let t = lock.read_lock(pid);
                    readers_in.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(writers_in.load(Ordering::SeqCst), 0, "writer with reader");
                    readers_in.fetch_sub(1, Ordering::SeqCst);
                    lock.read_unlock(pid, t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
