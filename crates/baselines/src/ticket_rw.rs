//! A task-fair (FIFO) ticket reader-writer lock.

use rmr_core::raw::{RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedWord};
use rmr_mutex::spin_until;
use std::fmt;

/// Grant-word layout: `read_grant` in the high 32 bits (its carry falls off
/// the top of the u64), `write_grant` in the low 32 bits.
const READ_GRANT_UNIT: u64 = 1 << 32;

fn read_grant(grants: u64) -> u32 {
    (grants >> 32) as u32
}

fn write_grant(grants: u64) -> u32 {
    grants as u32
}

/// A task-fair ticket reader-writer lock in the style popularized by the
/// queue-based locks of Mellor-Crummey & Scott \[9\] and the Linux `rwlock`
/// ticket variants: every arrival (reader or writer) draws a ticket, and
/// service is strictly FIFO, with consecutive readers overlapping.
///
/// * `users` dispenses tickets (one fetch&add per arrival).
/// * A writer with ticket `t` enters when `write_grant == t` (all earlier
///   arrivals have exited) and on exit bumps both grants.
/// * A reader with ticket `t` enters when `read_grant == t` (all earlier
///   arrivals have exited **or entered as readers**), immediately bumps
///   `read_grant` so the next queued reader can follow it in, and on exit
///   bumps `write_grant`.
///
/// Both classes spin on the single shared grant word, so in the CC model
/// every exit invalidates every waiter's cached copy: **O(n) RMRs per
/// handoff** — the contrast class for the paper's O(1) designs. Readers
/// arriving while a reader batch is being granted still pass one at a time
/// through the grant word, so concurrent entering holds only in the
/// absence of waiting writers.
///
/// Tickets are 32-bit wrapping counters: the lock supports arbitrarily
/// long runs as long as fewer than 2³² processes wait simultaneously.
///
/// # Example
///
/// ```
/// use rmr_baselines::TicketRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = TicketRwLock::new(4);
/// let t = lock.write_lock(Pid::from_index(0));
/// lock.write_unlock(Pid::from_index(0), t);
/// ```
pub struct TicketRwLock<B: Backend = Native> {
    /// Ticket dispenser.
    users: B::Word,
    /// `[read_grant : 32 | write_grant : 32]`.
    grants: B::Word,
    max_processes: usize,
}

impl TicketRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> TicketRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`TicketRwLock::new`]).
    pub fn new_in(max_processes: usize, _backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self { users: B::Word::new(0), grants: B::Word::new(0), max_processes }
    }

    fn take_ticket(&self) -> u32 {
        // Relaxed: drawing a ticket only needs the RMW's atomicity; the
        // holder synchronizes later through the grant word.
        self.users.fetch_add(1, Ordering::Relaxed) as u32
    }
}

impl<B: Backend> RawRwLock for TicketRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, _pid: Pid) {
        let ticket = self.take_ticket();
        // Acquire pairs with the Release grant bumps of earlier exiters so
        // this reader sees the last writer's critical-section writes.
        spin_until(|| read_grant(self.grants.load(Ordering::Acquire)) == ticket);
        // Let the next queued reader in right behind us. Relaxed: the RMW
        // continues the release sequence headed by the last Release bump, so
        // the next reader's Acquire spin still synchronizes with the last
        // writer; this reader has nothing of its own to publish.
        self.grants.fetch_add(READ_GRANT_UNIT, Ordering::Relaxed);
    }

    fn read_unlock(&self, _pid: Pid, (): ()) {
        // Release: a writer admitted by this bump must order its writes
        // after this reader's critical-section reads.
        self.grants.fetch_add(1, Ordering::Release); // write_grant += 1
    }

    fn write_lock(&self, _pid: Pid) {
        let ticket = self.take_ticket();
        // Acquire pairs with the Release bumps of every earlier exiter.
        spin_until(|| write_grant(self.grants.load(Ordering::Acquire)) == ticket);
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        // Both grants advance past this writer's ticket. Release publishes
        // the writer's critical-section writes to the Acquire spins.
        self.grants.fetch_add(READ_GRANT_UNIT + 1, Ordering::Release);
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: FIFO ticket service admits exactly one writer at a time
// regardless of how many draw tickets concurrently.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for TicketRwLock<B> {}

/// The try tier draws a ticket **conditionally**: a CAS on the dispenser
/// that only goes through when the would-be ticket is already granted, so
/// a failed attempt leaves no queue entry behind (drawing a ticket
/// unconditionally would commit the caller to waiting — FIFO admits no
/// abort once enqueued).
impl<B: Backend> RawTryReadLock for TicketRwLock<B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<()> {
        let u = self.users.load(Ordering::Relaxed);
        // Our ticket would be `u`; it is served the moment read_grant == u
        // (every earlier arrival has entered as a reader or fully exited).
        // Acquire as in read_lock: this observation admits us to the CS.
        if read_grant(self.grants.load(Ordering::Acquire)) != u as u32 {
            return None;
        }
        // Relaxed: the grant cannot advance past an undrawn ticket, so the
        // Acquire observation above stays valid; the CAS only needs to
        // atomically claim ticket `u`.
        if self.users.compare_exchange(u, u + 1, Ordering::Relaxed, Ordering::Relaxed).is_err() {
            return None; // someone else drew ticket u
        }
        // Granted immediately; let the next queued reader in behind us
        // (Relaxed for the same release-sequence reason as read_lock).
        self.grants.fetch_add(READ_GRANT_UNIT, Ordering::Relaxed);
        Some(())
    }
}

impl<B: Backend> RawTryRwLock for TicketRwLock<B> {
    fn try_write_lock(&self, _pid: Pid) -> Option<()> {
        let u = self.users.load(Ordering::Relaxed);
        // A writer's ticket is served only when ALL earlier arrivals have
        // exited: write_grant == u (Acquire admits us to the CS).
        if write_grant(self.grants.load(Ordering::Acquire)) != u as u32 {
            return None;
        }
        // Relaxed: as in try_read_lock, the observation cannot go stale.
        self.users
            .compare_exchange(u, u + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
            .then_some(())
    }
}

impl<B: Backend> fmt::Debug for TicketRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.grants.load(Ordering::Relaxed);
        f.debug_struct("TicketRwLock")
            .field("users", &(self.users.load(Ordering::Relaxed) as u32))
            .field("read_grant", &read_grant(g))
            .field("write_grant", &write_grant(g))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn cycles_single_thread() {
        let lock = TicketRwLock::new(2);
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
            let t = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), t);
        }
    }

    #[test]
    fn consecutive_readers_overlap() {
        let lock = TicketRwLock::new(4);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1)); // must not block behind `a`
        lock.read_unlock(pid(1), b);
        lock.read_unlock(pid(0), a);
    }

    #[test]
    fn fifo_blocks_reader_behind_waiting_writer() {
        // Task fairness: R1 in CS, W waiting, new R2 must queue behind W.
        let lock = Arc::new(TicketRwLock::new(4));
        let r1 = lock.read_lock(pid(0));

        let w_in = Arc::new(AtomicBool::new(false));
        let lw = Arc::clone(&lock);
        let w_in2 = Arc::clone(&w_in);
        let w = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            w_in2.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));

        let r2_in = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let r2_in2 = Arc::clone(&r2_in);
        let r2 = std::thread::spawn(move || {
            let t = lr.read_lock(pid(2));
            r2_in2.store(true, Ordering::SeqCst);
            lr.read_unlock(pid(2), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!w_in.load(Ordering::SeqCst), "writer entered over reader");
        assert!(!r2_in.load(Ordering::SeqCst), "reader jumped the writer queue");

        lock.read_unlock(pid(0), r1);
        w.join().unwrap();
        r2.join().unwrap();
        assert!(r2_in.load(Ordering::SeqCst));
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(TicketRwLock::new(8), 2, 4, 100);
    }
}
