//! A task-fair (FIFO) ticket reader-writer lock.

use rmr_core::raw::{RawParkedWaiters, RawRwLock, RawTryReadLock, RawTryRwLock};
use rmr_core::registry::Pid;
use rmr_mutex::mem::{Backend, Native, Ordering, SharedWord};
use rmr_mutex::spin_until;
use std::fmt;

/// Grant-word layout: `read_grant` in the high 32 bits (its carry falls off
/// the top of the u64), `write_grant` in the low 32 bits.
const READ_GRANT_UNIT: u64 = 1 << 32;

fn read_grant(grants: u64) -> u32 {
    (grants >> 32) as u32
}

fn write_grant(grants: u64) -> u32 {
    grants as u32
}

/// A task-fair ticket reader-writer lock in the style popularized by the
/// queue-based locks of Mellor-Crummey & Scott \[9\] and the Linux `rwlock`
/// ticket variants: every arrival (reader or writer) draws a ticket, and
/// service is strictly FIFO, with consecutive readers overlapping.
///
/// * `users` dispenses tickets (one fetch&add per arrival).
/// * A writer with ticket `t` enters when `write_grant == t` (all earlier
///   arrivals have exited) and on exit bumps both grants.
/// * A reader with ticket `t` enters when `read_grant == t` (all earlier
///   arrivals have exited **or entered as readers**), immediately bumps
///   `read_grant` so the next queued reader can follow it in, and on exit
///   bumps `write_grant`.
///
/// Both classes spin on the single shared grant word, so in the CC model
/// every exit invalidates every waiter's cached copy: **O(n) RMRs per
/// handoff** — the contrast class for the paper's O(1) designs. Readers
/// arriving while a reader batch is being granted still pass one at a time
/// through the grant word, so concurrent entering holds only in the
/// absence of waiting writers.
///
/// Tickets are 32-bit wrapping counters: the lock supports arbitrarily
/// long runs as long as fewer than 2³² processes wait simultaneously.
///
/// # Example
///
/// ```
/// use rmr_baselines::TicketRwLock;
/// use rmr_core::raw::RawRwLock;
/// use rmr_core::registry::Pid;
///
/// let lock = TicketRwLock::new(4);
/// let t = lock.write_lock(Pid::from_index(0));
/// lock.write_unlock(Pid::from_index(0), t);
/// ```
pub struct TicketRwLock<B: Backend = Native> {
    /// Ticket dispenser.
    users: B::Word,
    /// `[read_grant : 32 | write_grant : 32]`.
    grants: B::Word,
    /// An **abandoned writer ticket** awaiting deferred completion: `0` =
    /// none, else `ticket + 1` (widened to u64, so ticket 0 stays
    /// representable). Written by `cancel_write`; claimed (CAS) either by
    /// the exiter whose grant bump brings the abandoned ticket to the head
    /// of the queue, by the canceller's own head re-check, or by the next
    /// `start_write`, which *adopts* the ticket and its FIFO position.
    zombie: B::Word,
    max_processes: usize,
}

impl TicketRwLock {
    /// Creates the lock (capacity is nominal; kept for interface parity).
    pub fn new(max_processes: usize) -> Self {
        Self::new_in(max_processes, Native)
    }
}

impl<B: Backend> TicketRwLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`TicketRwLock::new`]).
    pub fn new_in(max_processes: usize, _backend: B) -> Self {
        assert!(max_processes > 0, "max_processes must be positive");
        Self {
            users: B::Word::new(0),
            grants: B::Word::new(0),
            zombie: B::Word::new(0),
            max_processes,
        }
    }

    fn take_ticket(&self) -> u32 {
        // Relaxed: drawing a ticket only needs the RMW's atomicity; the
        // holder synchronizes later through the grant word.
        self.users.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// The exiter half of the deferred write cancellation: after a grant
    /// bump produced `new_grants`, check whether the writer ticket now at
    /// the head of the queue is abandoned, and if so claim it and bump
    /// past it (the empty write passage).
    ///
    /// Site TK-ZCHECK: the load must be SeqCst — it forms a store-buffer
    /// square with `cancel_write`'s publish-then-recheck (the exiter does
    /// bump-then-check, the canceller does publish-then-recheck; SeqCst on
    /// all four keeps at least one side from missing the other, so an
    /// abandoned head ticket is always skipped by someone).
    fn skip_abandoned_head(&self, new_grants: u64) {
        let z = self.zombie.load(Ordering::SeqCst);
        if z != 0
            && write_grant(new_grants) == (z - 1) as u32
            && self.zombie.compare_exchange(z, 0, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            // Release: continues the grant chain exactly like write_unlock
            // (the skipped passage published nothing of its own).
            self.grants.fetch_add(READ_GRANT_UNIT + 1, Ordering::Release);
        }
    }
}

impl<B: Backend> RawRwLock for TicketRwLock<B> {
    type ReadToken = ();
    type WriteToken = ();

    fn read_lock(&self, _pid: Pid) {
        let ticket = self.take_ticket();
        // Acquire pairs with the Release grant bumps of earlier exiters so
        // this reader sees the last writer's critical-section writes.
        spin_until(|| read_grant(self.grants.load(Ordering::Acquire)) == ticket);
        // Let the next queued reader in right behind us. Relaxed: the RMW
        // continues the release sequence headed by the last Release bump, so
        // the next reader's Acquire spin still synchronizes with the last
        // writer; this reader has nothing of its own to publish.
        self.grants.fetch_add(READ_GRANT_UNIT, Ordering::Relaxed);
    }

    fn read_unlock(&self, _pid: Pid, (): ()) {
        // Release: a writer admitted by this bump must order its writes
        // after this reader's critical-section reads.
        let old = self.grants.fetch_add(1, Ordering::Release); // write_grant += 1
        self.skip_abandoned_head(old + 1);
    }

    fn write_lock(&self, _pid: Pid) {
        let ticket = self.take_ticket();
        // Acquire pairs with the Release bumps of every earlier exiter.
        spin_until(|| write_grant(self.grants.load(Ordering::Acquire)) == ticket);
    }

    fn write_unlock(&self, _pid: Pid, (): ()) {
        // Both grants advance past this writer's ticket. Release publishes
        // the writer's critical-section writes to the Acquire spins.
        let old = self.grants.fetch_add(READ_GRANT_UNIT + 1, Ordering::Release);
        self.skip_abandoned_head(old + READ_GRANT_UNIT + 1);
    }

    fn max_processes(&self) -> usize {
        self.max_processes
    }
}

// SAFETY: FIFO ticket service admits exactly one writer at a time
// regardless of how many draw tickets concurrently.
unsafe impl<B: Backend> rmr_core::raw::RawMultiWriter for TicketRwLock<B> {}

/// The try tier draws a ticket **conditionally**: a CAS on the dispenser
/// that only goes through when the would-be ticket is already granted, so
/// a failed attempt leaves no queue entry behind (drawing a ticket
/// unconditionally would commit the caller to waiting — plain FIFO admits
/// no abort once enqueued; only the [`RawParkedWaiters`] doorway below,
/// with its deferred ticket-skipping machinery, can revoke a real queue
/// entry).
impl<B: Backend> RawTryReadLock for TicketRwLock<B> {
    fn try_read_lock(&self, _pid: Pid) -> Option<()> {
        let u = self.users.load(Ordering::Relaxed);
        // Our ticket would be `u`; it is served the moment read_grant == u
        // (every earlier arrival has entered as a reader or fully exited).
        // Acquire as in read_lock: this observation admits us to the CS.
        if read_grant(self.grants.load(Ordering::Acquire)) != u as u32 {
            return None;
        }
        // Relaxed: the grant cannot advance past an undrawn ticket, so the
        // Acquire observation above stays valid; the CAS only needs to
        // atomically claim ticket `u`.
        if self.users.compare_exchange(u, u + 1, Ordering::Relaxed, Ordering::Relaxed).is_err() {
            return None; // someone else drew ticket u
        }
        // Granted immediately; let the next queued reader in behind us
        // (Relaxed for the same release-sequence reason as read_lock).
        self.grants.fetch_add(READ_GRANT_UNIT, Ordering::Relaxed);
        Some(())
    }
}

impl<B: Backend> RawTryRwLock for TicketRwLock<B> {
    fn try_write_lock(&self, _pid: Pid) -> Option<()> {
        let u = self.users.load(Ordering::Relaxed);
        // A writer's ticket is served only when ALL earlier arrivals have
        // exited: write_grant == u (Acquire admits us to the CS).
        if write_grant(self.grants.load(Ordering::Acquire)) != u as u32 {
            return None;
        }
        // Relaxed: as in try_read_lock, the observation cannot go stale.
        self.users
            .compare_exchange(u, u + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
            .then_some(())
    }
}

/// A drawn-but-not-granted writer ticket: proof of a real FIFO queue
/// position (readers and writers arriving later are served after it).
#[derive(Debug, Clone, Copy)]
pub struct TicketDoorway {
    ticket: u32,
}

// SAFETY: `poll_write` grants only when `write_grant == ticket`, the exact
// admission condition of `write_lock` — every earlier arrival has exited,
// and no later arrival can be served before this ticket is bumped past.
unsafe impl<B: Backend> RawParkedWaiters for TicketRwLock<B> {
    /// Queued: `start_write` draws a **real** ticket, so every reader and
    /// writer arriving afterwards is served strictly behind the parked
    /// doorway — the FIFO bypass bound is zero-past-the-in-flight set.
    const QUEUED: bool = true;

    type WriteDoorway = TicketDoorway;

    fn start_write(&self, _pid: Pid) -> TicketDoorway {
        // Adopt an abandoned predecessor's ticket — and its queue position
        // — rather than drawing a fresh one behind it. Site TK-ZADOPT
        // (SeqCst: totally ordered against the exiters' claim CAS).
        let z = self.zombie.load(Ordering::SeqCst);
        if z != 0 && self.zombie.compare_exchange(z, 0, Ordering::SeqCst, Ordering::SeqCst).is_ok()
        {
            return TicketDoorway { ticket: (z - 1) as u32 };
        }
        TicketDoorway { ticket: self.take_ticket() }
    }

    fn poll_write(&self, _pid: Pid, doorway: TicketDoorway) -> Result<(), TicketDoorway> {
        // Acquire admits us to the CS exactly as write_lock's spin does.
        if write_grant(self.grants.load(Ordering::Acquire)) == doorway.ticket {
            Ok(())
        } else {
            Err(doorway)
        }
    }

    fn cancel_write(&self, _pid: Pid, doorway: TicketDoorway) {
        // Site TK-ZPUB: publish the abandoned ticket, then re-check the
        // head. SeqCst on both — the other half of TK-ZCHECK's square: if
        // our ticket was already at the head when we published, every
        // exiter's bump-then-check preceded the publish, so nobody else
        // will skip it; the re-check below catches exactly that case.
        self.zombie.store(doorway.ticket as u64 + 1, Ordering::SeqCst);
        if write_grant(self.grants.load(Ordering::SeqCst)) == doorway.ticket
            && self
                .zombie
                .compare_exchange(doorway.ticket as u64 + 1, 0, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            // The empty write passage: bump both grants past our ticket.
            self.grants.fetch_add(READ_GRANT_UNIT + 1, Ordering::Release);
        }
    }
}

impl<B: Backend> fmt::Debug for TicketRwLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.grants.load(Ordering::Relaxed);
        f.debug_struct("TicketRwLock")
            .field("users", &(self.users.load(Ordering::Relaxed) as u32))
            .field("read_grant", &read_grant(g))
            .field("write_grant", &write_grant(g))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::rw_exclusion_stress;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn pid(i: usize) -> Pid {
        Pid::from_index(i)
    }

    #[test]
    fn cycles_single_thread() {
        let lock = TicketRwLock::new(2);
        for _ in 0..100 {
            let t = lock.read_lock(pid(0));
            lock.read_unlock(pid(0), t);
            let t = lock.write_lock(pid(0));
            lock.write_unlock(pid(0), t);
        }
    }

    #[test]
    fn consecutive_readers_overlap() {
        let lock = TicketRwLock::new(4);
        let a = lock.read_lock(pid(0));
        let b = lock.read_lock(pid(1)); // must not block behind `a`
        lock.read_unlock(pid(1), b);
        lock.read_unlock(pid(0), a);
    }

    #[test]
    fn fifo_blocks_reader_behind_waiting_writer() {
        // Task fairness: R1 in CS, W waiting, new R2 must queue behind W.
        let lock = Arc::new(TicketRwLock::new(4));
        let r1 = lock.read_lock(pid(0));

        let w_in = Arc::new(AtomicBool::new(false));
        let lw = Arc::clone(&lock);
        let w_in2 = Arc::clone(&w_in);
        let w = std::thread::spawn(move || {
            let t = lw.write_lock(pid(1));
            w_in2.store(true, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            lw.write_unlock(pid(1), t);
        });
        std::thread::sleep(Duration::from_millis(30));

        let r2_in = Arc::new(AtomicBool::new(false));
        let lr = Arc::clone(&lock);
        let r2_in2 = Arc::clone(&r2_in);
        let r2 = std::thread::spawn(move || {
            let t = lr.read_lock(pid(2));
            r2_in2.store(true, Ordering::SeqCst);
            lr.read_unlock(pid(2), t);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!w_in.load(Ordering::SeqCst), "writer entered over reader");
        assert!(!r2_in.load(Ordering::SeqCst), "reader jumped the writer queue");

        lock.read_unlock(pid(0), r1);
        w.join().unwrap();
        r2.join().unwrap();
        assert!(r2_in.load(Ordering::SeqCst));
    }

    #[test]
    fn exclusion_stress() {
        rw_exclusion_stress(TicketRwLock::new(8), 2, 4, 100);
    }

    #[test]
    fn doorway_draws_a_real_queue_position() {
        use rmr_core::raw::RawParkedWaiters;
        let lock = TicketRwLock::new(4);
        let d = lock.start_write(pid(0));
        // FIFO teeth: a reader arriving after the doorway queues behind it.
        assert!(lock.try_read_lock(pid(1)).is_none(), "reader bypassed a parked doorway");
        let t = lock.poll_write(pid(0), d).expect("queue head, uncontended");
        lock.write_unlock(pid(0), t);
        assert!(lock.try_read_lock(pid(1)).is_some());
        lock.read_unlock(pid(1), ());
    }

    #[test]
    fn cancel_at_queue_head_reopens_admission() {
        use rmr_core::raw::RawParkedWaiters;
        let lock = TicketRwLock::new(4);
        let d = lock.start_write(pid(0));
        lock.cancel_write(pid(0), d);
        let t = lock.try_read_lock(pid(1)).expect("cancel must bump past the abandoned ticket");
        lock.read_unlock(pid(1), t);
    }

    #[test]
    fn exiter_skips_abandoned_ticket_behind_reader() {
        use rmr_core::raw::RawParkedWaiters;
        let lock = TicketRwLock::new(4);
        let r = lock.read_lock(pid(1)); // ticket 0, in CS
        let d = lock.start_write(pid(0)); // ticket 1, queued behind the reader
        let d = lock.poll_write(pid(0), d).expect_err("reader still in CS");
        lock.cancel_write(pid(0), d); // not at head: deferred to the exiter
        assert!(lock.try_read_lock(pid(2)).is_none(), "abandoned ticket still heads the queue");
        lock.read_unlock(pid(1), r); // exiter's bump claims and skips it
        let t = lock.try_read_lock(pid(2)).expect("queue drained past the abandoned ticket");
        lock.read_unlock(pid(2), t);
    }

    #[test]
    fn adoption_preserves_the_fifo_position() {
        use rmr_core::raw::RawParkedWaiters;
        let lock = TicketRwLock::new(4);
        let r = lock.read_lock(pid(1));
        let d = lock.start_write(pid(0));
        let ticket = d.ticket;
        let d = lock.poll_write(pid(0), d).expect_err("reader still in CS");
        lock.cancel_write(pid(0), d);
        // Re-start before any exit: the same ticket comes back.
        let d2 = lock.start_write(pid(0));
        assert_eq!(d2.ticket, ticket, "adoption must reuse the abandoned ticket");
        lock.read_unlock(pid(1), r);
        let t = lock.poll_write(pid(0), d2).expect("reader gone, adopted ticket at head");
        lock.write_unlock(pid(0), t);
    }
}
