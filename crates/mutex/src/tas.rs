//! Test-and-set and test-and-test-and-set locks (RMR-model baselines).

use crate::mem::{Backend, Native, Ordering, SharedBool};
use crate::spin::SpinWait;
use crate::RawMutex;
use std::fmt;

/// A plain test-and-set spin lock.
///
/// Every acquisition attempt performs an atomic `swap`, which in the CC cost
/// model is a write and therefore always a remote memory reference: under
/// contention a waiter generates an **unbounded** number of RMRs. This lock
/// exists as the negative baseline for the RMR experiments (E7) — it is what
/// the constant-RMR designs are *not*.
///
/// Generic over the memory backend `B` ([`Native`] by default).
///
/// # Example
///
/// ```
/// use rmr_mutex::{RawMutex, TasLock};
///
/// let lock = TasLock::new();
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
pub struct TasLock<B: Backend = Native> {
    held: B::Bool,
}

impl TasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl Default for TasLock {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Backend> TasLock<B> {
    /// Creates an unlocked lock over the given memory backend.
    pub fn new_in(_backend: B) -> Self {
        Self { held: B::Bool::new(false) }
    }

    /// Attempts to acquire without waiting; `true` on success.
    pub fn try_lock(&self) -> bool {
        // Acquire: a successful swap must see every write released by the
        // previous holder's unlock store before the critical section runs.
        !self.held.swap(true, Ordering::Acquire)
    }
}

impl<B: Backend> RawMutex for TasLock<B> {
    type Token = ();

    fn lock(&self) {
        let mut spin = SpinWait::new();
        // Acquire on the winning swap pairs with the Release unlock store;
        // losing iterations need no ordering, but the swap is one op.
        while self.held.swap(true, Ordering::Acquire) {
            spin.spin();
        }
    }

    fn unlock(&self, (): ()) {
        // Release: publishes the critical section's writes to the next
        // holder, whose Acquire swap synchronizes with this store.
        self.held.store(false, Ordering::Release);
    }
}

impl<B: Backend> fmt::Debug for TasLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        f.debug_struct("TasLock").field("held", &self.held.load(Ordering::Relaxed)).finish()
    }
}

/// A test-and-test-and-set spin lock.
///
/// Waiters spin on a cached *read* of the flag and only attempt the `swap`
/// after observing it free. Under the CC model this costs O(1) RMRs per
/// *release* per waiter (every release invalidates all waiters' cached
/// copies), i.e. O(n) RMRs per lock handoff in aggregate — better than
/// [`TasLock`], still far from the O(1) queue locks.
///
/// Generic over the memory backend `B` ([`Native`] by default).
///
/// # Example
///
/// ```
/// use rmr_mutex::{RawMutex, TtasLock};
///
/// let lock = TtasLock::new();
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
pub struct TtasLock<B: Backend = Native> {
    held: B::Bool,
}

impl TtasLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl Default for TtasLock {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Backend> TtasLock<B> {
    /// Creates an unlocked lock over the given memory backend.
    pub fn new_in(_backend: B) -> Self {
        Self { held: B::Bool::new(false) }
    }

    /// Attempts to acquire without waiting; `true` on success.
    ///
    /// Test-first, like the blocking path: the swap is only attempted when
    /// the flag reads free, so a failed try on a held lock costs one read.
    ///
    /// # Example
    ///
    /// ```
    /// use rmr_mutex::{RawMutex, TtasLock};
    ///
    /// let lock = TtasLock::new();
    /// assert!(lock.try_lock());
    /// assert!(!lock.try_lock());
    /// lock.unlock(());
    /// ```
    pub fn try_lock(&self) -> bool {
        // The pre-check is a heuristic (Relaxed): correctness rides
        // entirely on the Acquire swap that follows.
        !self.held.load(Ordering::Relaxed) && !self.held.swap(true, Ordering::Acquire)
    }
}

impl<B: Backend> RawMutex for TtasLock<B> {
    type Token = ();

    fn lock(&self) {
        let mut spin = SpinWait::new();
        loop {
            // Local phase: spin on the cached value. Relaxed — a stale
            // "free" only costs a futile swap attempt; a stale "held" only
            // delays; the Acquire swap below carries the synchronization.
            while self.held.load(Ordering::Relaxed) {
                spin.spin();
            }
            // Global phase: one RMW attempt. Acquire pairs with the
            // Release unlock store of the previous holder.
            if !self.held.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    fn unlock(&self, (): ()) {
        // Release: publishes the critical section's writes to the next
        // holder's Acquire swap.
        self.held.store(false, Ordering::Release);
    }
}

impl<B: Backend> fmt::Debug for TtasLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        f.debug_struct("TtasLock").field("held", &self.held.load(Ordering::Relaxed)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusion_stress;

    #[test]
    fn tas_try_lock_reports_state() {
        let lock = TasLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock(());
        assert!(lock.try_lock());
    }

    #[test]
    fn tas_exclusion_under_contention() {
        exclusion_stress(TasLock::new(), 8, 200);
    }

    #[test]
    fn ttas_exclusion_under_contention() {
        exclusion_stress(TtasLock::new(), 8, 200);
    }

    #[test]
    fn ttas_single_thread_cycles() {
        let lock = TtasLock::new();
        for _ in 0..1000 {
            lock.lock();
            lock.unlock(());
        }
    }
}
