//! Ticket (Lamport bakery-style counter) lock.

use crate::mem::{Backend, Native, Ordering, SharedWord};
use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::RawMutex;
use std::fmt;

/// A ticket lock: FCFS, starvation free, but **all** waiters spin on the
/// single `now_serving` counter, so every release invalidates every waiter's
/// cache line — O(n) RMRs per handoff in the CC model. Sits between
/// [`crate::TtasLock`] and [`crate::AndersonLock`] in the E7 baseline sweep.
///
/// Generic over the memory backend `B` ([`Native`] by default).
///
/// # Example
///
/// ```
/// use rmr_mutex::{RawMutex, TicketLock};
///
/// let lock = TicketLock::new();
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
pub struct TicketLock<B: Backend = Native> {
    next_ticket: CachePadded<B::Word>,
    now_serving: CachePadded<B::Word>,
}

/// Proof of ownership for [`TicketLock`].
#[derive(Debug)]
pub struct TicketToken {
    ticket: u64,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl Default for TicketLock {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Backend> TicketLock<B> {
    /// Creates an unlocked lock over the given memory backend.
    pub fn new_in(_backend: B) -> Self {
        Self {
            next_ticket: CachePadded::new(B::Word::new(0)),
            now_serving: CachePadded::new(B::Word::new(0)),
        }
    }

    /// Number of lock acquisitions completed or in progress. Diagnostic.
    pub fn tickets_issued(&self) -> u64 {
        self.next_ticket.load(Ordering::Relaxed)
    }
}

impl<B: Backend> RawMutex for TicketLock<B> {
    type Token = TicketToken;

    fn lock(&self) -> TicketToken {
        // Relaxed: the ticket draw only needs the counter's own atomicity
        // (unique, ordered tickets); all happens-before for the critical
        // section comes from the now_serving Acquire/Release pair.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        // Acquire: observing our ticket synchronizes with the previous
        // holder's Release unlock, making its CS writes visible.
        spin_until(|| self.now_serving.load(Ordering::Acquire) == ticket);
        TicketToken { ticket }
    }

    fn unlock(&self, token: TicketToken) {
        // Release: publishes the critical section's writes to the waiter
        // whose Acquire load observes the new serving number.
        self.now_serving.store(token.ticket.wrapping_add(1), Ordering::Release);
    }
}

impl<B: Backend> fmt::Debug for TicketLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        f.debug_struct("TicketLock")
            .field("next_ticket", &self.next_ticket.load(Ordering::Relaxed))
            .field("now_serving", &self.now_serving.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusion_stress;

    #[test]
    fn tickets_are_sequential() {
        let lock = TicketLock::new();
        let a = lock.lock();
        assert_eq!(a.ticket, 0);
        lock.unlock(a);
        let b = lock.lock();
        assert_eq!(b.ticket, 1);
        lock.unlock(b);
        assert_eq!(lock.tickets_issued(), 2);
    }

    #[test]
    fn exclusion_under_contention() {
        exclusion_stress(TicketLock::new(), 8, 200);
    }
}
