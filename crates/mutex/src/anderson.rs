//! T. E. Anderson's array-based queueing lock (IEEE TPDS 1990).

use crate::mem::{Backend, Native, Ordering, SharedBool, SharedWord};
use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::RawMutex;
use std::fmt;

/// Anderson's array-based queue lock: O(1) RMR on cache-coherent machines,
/// first-come-first-served, starvation free, bounded exit.
///
/// Each arriving process draws a ticket with one `fetch_add` and spins on its
/// own cache-padded slot of a boolean array; the releasing process flips the
/// next slot. Under the CC cost model an acquire/release pair performs a
/// constant number of remote references regardless of contention, which is
/// why Bhatt & Jayanti use this lock as the writer-side mutex `M` in their
/// Figure 3/4 multi-writer constructions (Theorems 3–5).
///
/// Beyond mutual exclusion the lock satisfies the *waiting-room enabledness*
/// property their WP2 proof needs: whenever no process is in the critical or
/// exit section, the waiter holding the front ticket finds its slot already
/// `true` and can enter in a bounded number of its own steps.
///
/// Generic over the memory backend `B` ([`Native`] by default; use
/// [`AndersonLock::new_in`] with [`crate::Counting`] to measure RMRs on the
/// real lock).
///
/// # Capacity
///
/// The slot array bounds the number of **concurrent** contenders (not total
/// lock operations). `new` rounds the requested capacity up to a power of
/// two so ticket arithmetic stays correct across `u64` wrap-around.
///
/// # Example
///
/// ```
/// use rmr_mutex::{AndersonLock, RawMutex};
///
/// let lock = AndersonLock::new(4);
/// let t = lock.lock();
/// lock.unlock(t);
/// assert!(lock.capacity().unwrap() >= 4);
/// ```
pub struct AndersonLock<B: Backend = Native> {
    /// `slots[i] == true` means the owner of ticket `i (mod capacity)` may
    /// enter the critical section. Exactly one slot is `true` when the lock
    /// is free.
    slots: Box<[CachePadded<B::Bool>]>,
    /// Next ticket to hand out; monotonically increasing.
    next_ticket: B::Word,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
}

/// Proof of ownership for [`AndersonLock`]: the holder's ticket number.
#[derive(Debug)]
pub struct AndersonToken {
    ticket: u64,
}

impl AndersonLock {
    /// Creates a lock able to serve at least `capacity` concurrent
    /// contenders (rounded up to the next power of two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Self::new_in(capacity, Native)
    }
}

impl<B: Backend> AndersonLock<B> {
    /// Creates the lock over the given memory backend (same contract as
    /// [`AndersonLock::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new_in(capacity: usize, _backend: B) -> Self {
        assert!(capacity > 0, "AndersonLock capacity must be positive");
        let capacity = capacity.next_power_of_two().max(2);
        let slots: Box<[_]> =
            (0..capacity).map(|i| CachePadded::new(B::Bool::new(i == 0))).collect();
        Self { slots, next_ticket: B::Word::new(0), mask: capacity as u64 - 1 }
    }

    fn slot(&self, ticket: u64) -> &B::Bool {
        &self.slots[(ticket & self.mask) as usize]
    }

    /// True if the lock is currently free (its front slot is open and no
    /// waiter holds that ticket). Intended for tests and diagnostics only;
    /// the answer may be stale by the time it returns.
    pub fn is_free_hint(&self) -> bool {
        // Diagnostic snapshot only; no synchronization rides on it.
        let next = self.next_ticket.load(Ordering::Relaxed);
        self.slot(next).load(Ordering::Relaxed)
    }
}

impl<B: Backend> RawMutex for AndersonLock<B> {
    type Token = AndersonToken;

    fn lock(&self) -> AndersonToken {
        // Doorway: one F&A — this both registers the request and fixes the
        // FCFS order, giving the bounded doorway required of lock M.
        // Relaxed: the draw only needs the counter's atomicity; the CS
        // happens-before edge comes from the slot Acquire/Release pair.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        // Waiting room: local spin on our own cache line. Acquire pairs
        // with the predecessor's Release store that opened this slot.
        spin_until(|| self.slot(ticket).load(Ordering::Acquire));
        AndersonToken { ticket }
    }

    fn unlock(&self, token: AndersonToken) {
        // Close our slot for its next lap, then open the successor's slot.
        // The reset may be Relaxed: the Release below orders it before the
        // successor's wake-up, and every later reader of our slot (the
        // wrap-around waiter, capacity tickets later) is reached only
        // through that chain of Release/Acquire handoffs, so coherence
        // places the reset before any future `true`.
        self.slot(token.ticket).store(false, Ordering::Relaxed);
        // Release: publishes the CS writes (and the reset above) to the
        // successor's Acquire spin load.
        self.slot(token.ticket.wrapping_add(1)).store(true, Ordering::Release);
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.mask as usize + 1)
    }
}

impl<B: Backend> fmt::Debug for AndersonLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Diagnostic snapshot only; no synchronization rides on it.
        f.debug_struct("AndersonLock")
            .field("capacity", &(self.mask + 1))
            .field("next_ticket", &self.next_ticket.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusion_stress;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(AndersonLock::new(1).capacity(), Some(2));
        assert_eq!(AndersonLock::new(3).capacity(), Some(4));
        assert_eq!(AndersonLock::new(4).capacity(), Some(4));
        assert_eq!(AndersonLock::new(9).capacity(), Some(16));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = AndersonLock::new(0);
    }

    #[test]
    fn uncontended_lock_unlock_cycles() {
        let lock = AndersonLock::new(2);
        for _ in 0..1000 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert!(lock.is_free_hint());
    }

    #[test]
    fn fcfs_order_is_ticket_order() {
        // Single-threaded probe: tickets must be handed out in order.
        let lock = AndersonLock::new(4);
        let t0 = lock.lock();
        assert_eq!(t0.ticket, 0);
        lock.unlock(t0);
        let t1 = lock.lock();
        assert_eq!(t1.ticket, 1);
        lock.unlock(t1);
    }

    #[test]
    fn ticket_wraparound_is_safe() {
        // Start the ticket counter near u64::MAX; since capacity is a power
        // of two, masking stays consistent across the wrap.
        let lock = AndersonLock::new(4);
        lock.next_ticket.store(u64::MAX - 1, Ordering::SeqCst);
        // Open the slot the next ticket maps to, closing slot 0 first.
        lock.slots[0].store(false, Ordering::SeqCst);
        lock.slot(u64::MAX - 1).store(true, Ordering::SeqCst);
        for _ in 0..8 {
            let t = lock.lock();
            lock.unlock(t);
        }
    }

    #[test]
    fn exclusion_under_contention() {
        exclusion_stress(AndersonLock::new(8), 8, 200);
    }

    #[test]
    fn counting_backend_cycles() {
        let lock = AndersonLock::new_in(4, crate::Counting);
        for _ in 0..100 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert!(lock.is_free_hint());
    }

    #[test]
    fn front_waiter_is_enabled_when_cs_empty() {
        // WP2 support property: with the CS empty, a fresh locker completes
        // in a bounded number of its own steps (no other thread needed).
        let lock = AndersonLock::new(4);
        let t = lock.lock(); // must not block
        lock.unlock(t);
    }
}
