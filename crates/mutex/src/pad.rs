//! Cache-line padding for contended shared variables.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to (a conservative upper bound of) the cache-line
/// size, so that two `CachePadded` values never share a line and a spin on
/// one cannot be invalidated by traffic on the other.
///
/// This matters for the RMR accounting the workspace is about: the paper's
/// O(1) bounds assume each busy-wait variable occupies its own coherence
/// unit. 128 bytes covers the common 64-byte line plus the spatial
/// prefetcher pairing on recent x86, and the 128-byte lines on some ARM
/// and POWER parts.
///
/// # Example
///
/// ```
/// use rmr_mutex::CachePadded;
/// use std::sync::atomic::AtomicBool;
///
/// let flag = CachePadded::new(AtomicBool::new(false));
/// assert!(std::mem::align_of_val(&flag) >= 128);
/// assert!(!flag.load(std::sync::atomic::Ordering::SeqCst));
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_do_not_share_lines() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
    }
}
