//! The `Sched` memory backend: deterministic, schedulable shared variables.
//!
//! [`mem`](crate::mem) gives every lock interchangeable backends —
//! [`Native`](crate::mem::Native) for production and
//! [`Counting`](crate::mem::Counting) for RMR accounting. This module adds
//! the checker's: [`Sched`], whose `Bool`/`Word` route **every** shared-memory
//! operation through a cooperative, fully deterministic scheduler. The
//! *shipped* lock code (not a re-encoding of it) can then be driven through
//! chosen interleavings, schedule by schedule, the way `rmr-sim` drives its
//! line-level models — closing the "model vs. deployed code" gap for the
//! correctness properties the same way the `Counting` backend closed it for
//! RMR accounting (DESIGN.md §9).
//!
//! # Why yield points at `Backend` operations suffice
//!
//! All inter-thread communication in the lock algorithms goes through the
//! `Backend` vocabulary (DESIGN.md §5). Code between two `Backend`
//! operations touches only task-local state, so interleaving it with other
//! tasks cannot change any observable outcome: scheduling decisions only
//! ever matter at the operations themselves. One yield point per operation
//! therefore explores the complete interleaving space of the algorithm at
//! the same atomicity the paper (and `rmr-sim`) assumes — and because the
//! scheduler runs exactly one task at a time, every execution is serial
//! and replayable.
//!
//! # Memory models
//!
//! [`run_tasks`] executes under [`MemoryModel::SeqCst`]: every operation
//! takes effect in memory the moment its turn runs, whatever [`Ordering`]
//! it was annotated with — the interleaving semantics the paper's proofs
//! assume. [`run_tasks_in`] can instead select
//! [`MemoryModel::StoreBuffer`], the weak mode that verifies the
//! workspace's per-site ordering annotations (DESIGN.md §13):
//!
//! * Each task owns a FIFO **store buffer** (capacity
//!   [`STORE_BUFFER_CAP`]). A store annotated weaker than `SeqCst` is
//!   *buffered*, invisible to every other task until flushed; a `SeqCst`
//!   store drains the task's own buffer and writes memory directly.
//! * **Flush points are scheduler decisions.** Whenever a task has
//!   flushable entries, the strategy's runnable set is extended with
//!   *virtual ids* (`n_tasks + task·CAP + k` = flush the `k`-th eligible
//!   entry of `task`), so the nondeterminism of the hardware's write-back
//!   timing is explored — and replayed — exactly like task interleaving. A
//!   `Relaxed` entry is eligible once no older same-variable entry sits
//!   before it (per-variable coherence holds; cross-variable order does
//!   not); a `Release` entry is eligible only at the buffer front, which
//!   is precisely the "everything before me is visible first" guarantee.
//! * Loads read the task's **own newest buffered value** if one exists
//!   (store forwarding), else main memory. Load orderings are not
//!   distinguished — a store-buffer machine never reorders loads, so
//!   `Acquire`/`Relaxed` load demotions are invisible here; each
//!   acquire-load site is instead guarded through the mutants of the store
//!   it pairs with (DESIGN.md §13).
//! * Every RMW (swap, fetch&add, CAS — successful **or failed**) drains
//!   the performer's buffer and operates on memory, like the x86 `lock`
//!   prefix. A buffer also drains (oldest entry first) on overflow and at
//!   a `Release`-or-stronger [`fence`](crate::mem::Backend::fence); a
//!   finished task's leftover entries keep flushing via decisions (a real
//!   write buffer outlives its core's last instruction) and are retired
//!   when the run completes.
//! * Buffers flush to a single main memory: the model is **multi-copy
//!   atomic** (TSO/PSO-like), so IRIW-style non-atomicity is out of scope
//!   and pinned as such by the litmus suite in `rmr-check`.
//!
//! The model is deliberately a *store-buffer* semantics rather than full
//! C++11: it reaches every reordering the workspace's annotations actually
//! license on mainstream hardware (store→store and store→load), keeps
//! failures replayable from the same decision sequence as the strong mode,
//! and composes with stall detection — a spinner is only ever revived by a
//! visible write, and deadlock is declared only when no task can move
//! *and* no buffered store remains to flush.
//!
//! # Execution model
//!
//! [`run_tasks`] spawns one OS thread per task, but the controller
//! grants the *turn* to exactly one task at a time. A turn spans one
//! `Backend` operation plus all task-local code up to the next operation
//! (or task exit). Tasks park at yield points; a [`Strategy`] picks who
//! moves next. Nondeterminism from the OS scheduler is fully excluded:
//! the same strategy decisions replay the same execution bit-for-bit.
//!
//! Spin loops need no special annotations: a task that keeps repeating a
//! *futile* operation on one variable — a load seeing the same value, a
//! swap that wrote back what was already there, a failing CAS — is marked
//! **stalled** and excluded from strategy picks until another task makes
//! progress on that variable.
//! If every unfinished task is stalled the controller runs a bounded
//! confirmation phase (so bounded retry loops, e.g. `try_read` attempt
//! counters, can give up on their own) and then reports a deadlock.
//!
//! # Example
//!
//! ```
//! use rmr_mutex::sched::{run_tasks, RoundRobin, Sched};
//! use rmr_mutex::{RawMutex, TicketLock};
//! use std::sync::Arc;
//!
//! let lock = Arc::new(TicketLock::new_in(Sched));
//! let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..2)
//!     .map(|_| {
//!         let lock = Arc::clone(&lock);
//!         Box::new(move || {
//!             let t = lock.lock();
//!             lock.unlock(t);
//!         }) as Box<dyn FnOnce() + Send>
//!     })
//!     .collect();
//! let outcome = run_tasks(tasks, &mut RoundRobin::default(), 10_000);
//! assert!(outcome.result.is_ok());
//! ```

use crate::mem::{Backend, Ordering, SharedBool, SharedWord};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Consecutive same-variable same-value loads after which a task counts as
/// stalled (a spin loop waiting for another task).
const STALL_LIMIT: u32 = 3;

/// Extra steps granted to each stalled task before a deadlock is declared,
/// so bounded retry loops (which look like spins until they give up) can
/// run to their abort path.
const CONFIRM_STEPS_PER_TASK: u32 = 64;

/// Upper bound on any single condvar wait. A correct controller/task pair
/// never waits this long; hitting it means the protocol itself is wedged,
/// and a loud panic beats a hung test run.
const WEDGE_TIMEOUT: Duration = Duration::from_secs(120);

/// Panic payload used to unwind tasks out of a poisoned run.
const ABORT_PAYLOAD: &str = "rmr-sched: run aborted by controller";

/// Per-task store-buffer capacity under [`MemoryModel::StoreBuffer`]. A
/// store that would overflow the buffer force-flushes the oldest entry
/// first (real write buffers are finite too); small enough to keep the
/// decision space explorable, large enough that every lock's
/// store-then-store windows fit.
pub const STORE_BUFFER_CAP: usize = 4;

// ---------------------------------------------------------------------
// The backend
// ---------------------------------------------------------------------

/// The deterministic-scheduling backend (see the module docs).
///
/// Operations performed by threads **not** registered as scheduler tasks
/// (lock construction, post-run inspection, thread-local destructors that
/// run after a task's body has returned) execute natively, unscheduled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sched;

impl Backend for Sched {
    type Bool = SchedBool;
    type Word = SchedWord;

    const NAME: &'static str = "sched";

    fn fence(order: Ordering) {
        assert!(order != Ordering::Relaxed, "there is no such thing as a relaxed fence");
        std::sync::atomic::fence(order);
        // In the store-buffer model a Release-or-stronger fence makes the
        // caller's earlier stores visible; an Acquire fence has no buffer
        // effect (loads are never delayed). Not a yield point: a fence is
        // not a shared-memory access, it only bounds the caller's own
        // reordering.
        if order != Ordering::Acquire {
            drain_own_buffer();
        }
    }
}

/// The memory model a scheduled run executes under.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MemoryModel {
    /// Sequential consistency: every operation hits memory on its turn,
    /// whatever its [`Ordering`] annotation. The semantics the paper's
    /// proofs assume, and the [`run_tasks`] default.
    #[default]
    SeqCst,
    /// Per-task store buffers with strategy-chosen flush points — the weak
    /// mode that checks the per-site ordering annotations (module docs).
    StoreBuffer,
}

/// Monotonic id source for [`Sched`] variables, used in stall tracking and
/// failure reports. Construction order is deterministic because locks are
/// built on the controlling thread before any task runs.
static NEXT_VAR: AtomicU32 = AtomicU32::new(0);

fn fresh_var_id() -> u32 {
    NEXT_VAR.fetch_add(1, Ordering::Relaxed)
}

/// What a task is about to do at a yield point, for stall tracking and
/// deadlock reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Which shared variable (its creation-order id).
    pub var: u32,
    /// Operation class.
    pub kind: OpKind,
}

/// Classification of a `Backend` operation at a yield point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An atomic read.
    Load,
    /// Any atomic update (store, swap, fetch&add, CAS — successful or not).
    Update,
}

/// [`Sched`]'s boolean: an `AtomicBool` behind a yield point.
pub struct SchedBool {
    id: u32,
    inner: AtomicBool,
}

impl SharedBool for SchedBool {
    fn new(value: bool) -> Self {
        Self { id: fresh_var_id(), inner: AtomicBool::new(value) }
    }

    fn load(&self, _order: Ordering) -> bool {
        step(Op { var: self.id, kind: OpKind::Load });
        let v = match forwarded_load(self.id) {
            Some(buffered) => buffered != 0,
            None => self.inner.load(Ordering::SeqCst),
        };
        note(self.id, Outcome::observed(OpKind::Load, u64::from(v)));
        v
    }

    fn store(&self, value: bool, order: Ordering) {
        step(Op { var: self.id, kind: OpKind::Update });
        if buffer_store(self.id, Target::Bool(&self.inner), u64::from(value), order) {
            return; // buffered: invisible until a flush decision lands it
        }
        self.inner.store(value, Ordering::SeqCst);
        note(self.id, Outcome::Progress);
    }

    fn swap(&self, value: bool, _order: Ordering) -> bool {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer(); // RMWs act on memory (module docs)
        let old = self.inner.swap(value, Ordering::SeqCst);
        let outcome = if old == value {
            Outcome::observed(OpKind::Update, u64::from(old)) // wrote back what was there
        } else {
            Outcome::Progress
        };
        note(self.id, outcome);
        old
    }

    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer();
        let r = self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
        let outcome = match r {
            Ok(old) if old != new => Outcome::Progress,
            Ok(old) | Err(old) => Outcome::observed(OpKind::Update, u64::from(old)),
        };
        note(self.id, outcome);
        r
    }
}

impl fmt::Debug for SchedBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedBool(v{} = {})", self.id, self.inner.load(Ordering::SeqCst))
    }
}

impl Drop for SchedBool {
    fn drop(&mut self) {
        scrub_var(self.id);
    }
}

/// [`Sched`]'s word: an `AtomicU64` behind a yield point.
pub struct SchedWord {
    id: u32,
    inner: AtomicU64,
}

impl SharedWord for SchedWord {
    fn new(value: u64) -> Self {
        Self { id: fresh_var_id(), inner: AtomicU64::new(value) }
    }

    fn load(&self, _order: Ordering) -> u64 {
        step(Op { var: self.id, kind: OpKind::Load });
        let v = match forwarded_load(self.id) {
            Some(buffered) => buffered,
            None => self.inner.load(Ordering::SeqCst),
        };
        note(self.id, Outcome::observed(OpKind::Load, v));
        v
    }

    fn store(&self, value: u64, order: Ordering) {
        step(Op { var: self.id, kind: OpKind::Update });
        if buffer_store(self.id, Target::Word(&self.inner), value, order) {
            return;
        }
        self.inner.store(value, Ordering::SeqCst);
        note(self.id, Outcome::Progress);
    }

    fn swap(&self, value: u64, _order: Ordering) -> u64 {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer();
        let old = self.inner.swap(value, Ordering::SeqCst);
        let outcome =
            if old == value { Outcome::observed(OpKind::Update, old) } else { Outcome::Progress };
        note(self.id, outcome);
        old
    }

    fn fetch_add(&self, delta: u64, _order: Ordering) -> u64 {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer();
        let old = self.inner.fetch_add(delta, Ordering::SeqCst);
        let outcome =
            if delta == 0 { Outcome::observed(OpKind::Update, old) } else { Outcome::Progress };
        note(self.id, outcome);
        old
    }

    fn fetch_sub(&self, delta: u64, _order: Ordering) -> u64 {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer();
        let old = self.inner.fetch_sub(delta, Ordering::SeqCst);
        let outcome =
            if delta == 0 { Outcome::observed(OpKind::Update, old) } else { Outcome::Progress };
        note(self.id, outcome);
        old
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        step(Op { var: self.id, kind: OpKind::Update });
        drain_own_buffer();
        let r = self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
        let outcome = match r {
            Ok(old) if old != new => Outcome::Progress,
            Ok(old) | Err(old) => Outcome::observed(OpKind::Update, old),
        };
        note(self.id, outcome);
        r
    }
}

impl fmt::Debug for SchedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedWord(v{} = {})", self.id, self.inner.load(Ordering::SeqCst))
    }
}

impl Drop for SchedWord {
    fn drop(&mut self) {
        scrub_var(self.id);
    }
}

// ---------------------------------------------------------------------
// Store-buffer plumbing (MemoryModel::StoreBuffer)
// ---------------------------------------------------------------------

/// Where a buffered store lands when flushed.
#[derive(Clone, Copy)]
enum Target {
    Bool(*const AtomicBool),
    Word(*const AtomicU64),
}

/// One pending store in a task's buffer.
struct BufEntry {
    var: u32,
    target: Target,
    value: u64,
    /// Release (or AcqRel) stores flush only from the buffer front.
    release: bool,
}

// SAFETY: the pointers target `Sched` variables, which the run contract
// requires to outlive the run (module docs: construct locks before
// `run_tasks`, inspect after), and every dereference is an atomic store
// performed under the scheduler state mutex.
unsafe impl Send for BufEntry {}

/// Buffers a non-`SeqCst` store on a weak-mode task; returns `false` when
/// the caller should perform the store natively instead (strong mode,
/// non-task thread, or a `SeqCst` store — which first drains the buffer).
fn buffer_store(var: u32, target: Target, value: u64, order: Ordering) -> bool {
    TASK.with(|t| {
        let borrow = t.borrow();
        let Some(ctx) = borrow.as_ref() else { return false };
        let mut st = ctx.shared.lock_state();
        if st.poisoned || !st.weak {
            return false;
        }
        if order == Ordering::SeqCst {
            // A SeqCst store is a full write-buffer drain plus the write.
            while let Some(e) = st.buffers[ctx.id].pop_front() {
                st.apply_flush(e);
            }
            return false;
        }
        if st.buffers[ctx.id].len() >= STORE_BUFFER_CAP {
            // Finite buffer: overflow retires the oldest entry (the front
            // is always eligible, whatever its ordering).
            let e = st.buffers[ctx.id].pop_front().expect("non-empty buffer");
            st.apply_flush(e);
        }
        let release = matches!(order, Ordering::Release | Ordering::AcqRel);
        st.buffers[ctx.id].push_back(BufEntry { var, target, value, release });
        // The storer made local progress (its own spin streak breaks), but
        // nothing is visible yet: spinners on `var` stay stalled until a
        // flush decision lands the value.
        st.stall[ctx.id] = Stall::default();
        true
    })
}

/// The calling task's newest buffered value for `var`, if any (store
/// forwarding: a task always sees its own writes in program order).
fn forwarded_load(var: u32) -> Option<u64> {
    TASK.with(|t| {
        let borrow = t.borrow();
        let ctx = borrow.as_ref()?;
        let st = ctx.shared.lock_state();
        if st.poisoned || !st.weak {
            return None;
        }
        st.buffers[ctx.id].iter().rev().find(|e| e.var == var).map(|e| e.value)
    })
}

/// Drains the calling task's store buffer in FIFO order (RMWs, SeqCst
/// stores, Release fences, task exit). No-op off weak-mode tasks.
fn drain_own_buffer() {
    TASK.with(|t| {
        let borrow = t.borrow();
        let Some(ctx) = borrow.as_ref() else { return };
        let mut st = ctx.shared.lock_state();
        if st.poisoned || !st.weak {
            return;
        }
        while let Some(e) = st.buffers[ctx.id].pop_front() {
            st.apply_flush(e);
        }
    })
}

/// Write-back on deallocation: when a `Sched` variable is dropped on a
/// task thread, land every buffered store targeting it — from *any*
/// task's buffer — while the memory is still valid. Without this, a
/// variable that dies before the run's final drain (an ephemeral
/// per-acquire node, or a lock whose last `Arc` lives inside a task
/// body) would leave dangling [`BufEntry`] pointers for the controller
/// to flush into freed memory. Runs even when the state is poisoned:
/// unwinding tasks drop their locks too, and a scrubbed entry is one
/// that can never dangle.
fn scrub_var(var: u32) {
    TASK.with(|t| {
        let Ok(borrow) = t.try_borrow() else { return };
        let Some(ctx) = borrow.as_ref() else { return };
        let mut st = ctx.shared.lock_state();
        if !st.weak {
            return;
        }
        let mut doomed = Vec::new();
        for buf in st.buffers.iter_mut() {
            let mut i = 0;
            while i < buf.len() {
                if buf[i].var == var {
                    doomed.push(buf.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
        }
        for e in doomed {
            st.apply_flush(e);
        }
    })
}

// ---------------------------------------------------------------------
// Task-side plumbing
// ---------------------------------------------------------------------

struct TaskCtx {
    id: usize,
    shared: Arc<Shared>,
    /// True while the task holds a grant it has not yet spent on an
    /// operation (set by the pre-body wait and consumed by the first op).
    primed: Cell<bool>,
}

thread_local! {
    static TASK: RefCell<Option<TaskCtx>> = const { RefCell::new(None) };
}

/// The yield point: ends the calling task's current turn (if any) and
/// blocks until the controller grants it the next one. No-op on threads
/// that are not scheduler tasks.
fn step(op: Op) {
    TASK.with(|t| {
        if let Some(ctx) = t.borrow().as_ref() {
            ctx.step(op);
        }
    });
}

/// What a completed operation revealed, for stall tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The operation changed the variable (or published a value): the
    /// performer is live, and spinners on this variable must be rechecked.
    Progress,
    /// The operation was futile — a load, a same-value swap, a failed CAS
    /// — keyed so repeats are recognizable.
    Observation(Observed),
}

impl Outcome {
    /// A futile operation, keyed so that "same kind of op seeing the same
    /// value" compares equal and anything else breaks the streak.
    fn observed(kind: OpKind, value: u64) -> Self {
        Outcome::Observation(Observed { kind, value })
    }
}

/// Exact identity of a futile operation's observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Observed {
    kind: OpKind,
    value: u64,
}

/// Records what a scheduled operation revealed: observations feed the
/// performer's stall streak; progress clears it and re-enables every task
/// spinning on the touched variable. No-op off scheduler tasks.
fn note(var: u32, outcome: Outcome) {
    TASK.with(|t| {
        if let Some(ctx) = t.borrow().as_ref() {
            let mut st = ctx.shared.lock_state();
            if st.poisoned {
                return;
            }
            match outcome {
                Outcome::Observation(obs) => {
                    let stall = &mut st.stall[ctx.id];
                    if stall.last == Some((var, obs)) {
                        stall.streak += 1;
                    } else {
                        stall.last = Some((var, obs));
                        stall.streak = 1;
                    }
                }
                Outcome::Progress => {
                    let me = ctx.id;
                    for (i, stall) in st.stall.iter_mut().enumerate() {
                        if i == me || stall.last.map(|(v, _)| v) == Some(var) {
                            *stall = Stall::default();
                        }
                    }
                }
            }
        }
    });
}

/// Explicit yield point for harness code that wants a scheduling
/// opportunity without touching a shared variable (e.g. between two
/// critical-section phases). No-op off scheduler tasks.
pub fn yield_point() {
    step(Op { var: u32::MAX, kind: OpKind::Update });
    note(u32::MAX, Outcome::Progress);
}

impl TaskCtx {
    fn step(&self, op: Op) {
        let mut st = self.shared.lock_state();
        if st.poisoned {
            // Teardown in progress. This call may be a guard drop running
            // *during* the abort unwind — panicking again would abort the
            // process — so just let the operation run natively.
            return;
        }
        if self.primed.get() {
            // The pre-body grant covers the first operation.
            debug_assert_eq!(st.current, Some(self.id));
            self.primed.set(false);
        } else {
            debug_assert_eq!(st.current, Some(self.id), "step without holding the turn");
            st.current = None;
            st.waiting[self.id] = true;
            st.pending[self.id] = Some(op);
            self.shared.cv.notify_all();
            st = self.shared.wait_until(st, |s| s.poisoned || s.current == Some(self.id));
            if st.poisoned {
                st.waiting[self.id] = false;
                drop(st);
                panic::panic_any(ABORT_PAYLOAD);
            }
            st.waiting[self.id] = false;
        }
        // Stall bookkeeping happens *after* the operation executes (the
        // `note` calls in the backend impls), when its futility is known.
    }

    /// Pre-body wait: parks until the controller grants the first turn.
    fn first_wait(&self) {
        let mut st = self.shared.lock_state();
        st.waiting[self.id] = true;
        self.shared.cv.notify_all();
        st = self.shared.wait_until(st, |s| s.poisoned || s.current == Some(self.id));
        if st.poisoned {
            st.waiting[self.id] = false;
            drop(st);
            panic::panic_any(ABORT_PAYLOAD);
        }
        st.waiting[self.id] = false;
        self.primed.set(true);
    }
}

fn task_main(id: usize, shared: Arc<Shared>, body: Box<dyn FnOnce() + Send>) {
    TASK.with(|t| {
        *t.borrow_mut() =
            Some(TaskCtx { id, shared: Arc::clone(&shared), primed: Cell::new(false) });
    });
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        TASK.with(|t| t.borrow().as_ref().unwrap().first_wait());
        body();
    }));
    // Deregister *before* publishing completion so late operations (e.g.
    // thread-local destructors) run natively instead of deadlocking on a
    // turn that will never be granted.
    TASK.with(|t| *t.borrow_mut() = None);
    let mut st = shared.lock_state();
    // The task's store buffer is NOT drained here: like a real core's
    // write buffer, it keeps flushing asynchronously — the controller
    // keeps offering its entries as flush decisions after the task
    // finishes, and force-drains whatever remains when the run completes,
    // so buffered stores never vanish with their task.
    if st.current == Some(id) {
        st.current = None;
    }
    st.finished[id] = true;
    if let Err(payload) = result {
        let is_abort = payload.downcast_ref::<&str>() == Some(&ABORT_PAYLOAD);
        if !is_abort {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            st.panics[id] = Some(msg);
        }
    }
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------
// Controller state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct Stall {
    last: Option<(u32, Observed)>,
    streak: u32,
}

impl Stall {
    fn stalled(&self) -> bool {
        self.streak >= STALL_LIMIT
    }
}

struct State {
    current: Option<usize>,
    waiting: Vec<bool>,
    finished: Vec<bool>,
    panics: Vec<Option<String>>,
    pending: Vec<Option<Op>>,
    stall: Vec<Stall>,
    /// Per-task store buffers (always allocated; only populated under
    /// [`MemoryModel::StoreBuffer`]).
    buffers: Vec<VecDeque<BufEntry>>,
    weak: bool,
    poisoned: bool,
}

impl State {
    /// Lands one buffered store in main memory and revives every task
    /// spinning on the touched variable — a flush is the moment a store
    /// becomes visible, exactly like a strong-mode store's `Progress`.
    fn apply_flush(&mut self, e: BufEntry) {
        match e.target {
            // SAFETY: see `BufEntry`'s Send justification.
            Target::Bool(p) => unsafe { (*p).store(e.value != 0, Ordering::SeqCst) },
            Target::Word(p) => unsafe { (*p).store(e.value, Ordering::SeqCst) },
        }
        for stall in self.stall.iter_mut() {
            if stall.last.map(|(v, _)| v) == Some(e.var) {
                *stall = Stall::default();
            }
        }
    }

    /// The flushable entries of every task's buffer, as `(task, buffer
    /// index, virtual pick id)` triples in deterministic order. Virtual id
    /// `n + t·CAP + k` names the `k`-th eligible entry of task `t`'s
    /// buffer — stable under replay because buffers are a deterministic
    /// function of the decision prefix.
    fn flush_candidates(&self, n: usize) -> Vec<(usize, usize, usize)> {
        if !self.weak {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (t, buf) in self.buffers.iter().enumerate() {
            let mut k = 0;
            for (idx, e) in buf.iter().enumerate() {
                let eligible = if e.release {
                    idx == 0
                } else {
                    !buf.iter().take(idx).any(|earlier| earlier.var == e.var)
                };
                if eligible {
                    out.push((t, idx, n + t * STORE_BUFFER_CAP + k));
                    k += 1;
                }
            }
        }
        out
    }
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    fn new(n: usize, weak: bool) -> Self {
        Self {
            state: Mutex::new(State {
                current: None,
                waiting: vec![false; n],
                finished: vec![false; n],
                panics: vec![None; n],
                pending: vec![None; n],
                stall: vec![Stall::default(); n],
                buffers: (0..n).map(|_| VecDeque::new()).collect(),
                weak,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("scheduler state mutex poisoned")
    }

    /// Waits on the condvar until `pred` holds, panicking if the protocol
    /// wedges (no transition for [`WEDGE_TIMEOUT`]).
    fn wait_until<'a>(
        &'a self,
        mut guard: MutexGuard<'a, State>,
        pred: impl Fn(&State) -> bool,
    ) -> MutexGuard<'a, State> {
        while !pred(&guard) {
            let (g, timeout) =
                self.cv.wait_timeout(guard, WEDGE_TIMEOUT).expect("scheduler state mutex poisoned");
            guard = g;
            if timeout.timed_out() && !pred(&guard) {
                panic!(
                    "rmr-sched: protocol wedged (current={:?} waiting={:?} finished={:?})",
                    guard.current, guard.waiting, guard.finished
                );
            }
        }
        guard
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// What a [`Strategy`] sees at each scheduling decision.
#[derive(Debug)]
pub struct PickView<'a> {
    /// Strategy decisions made so far (confirmation-phase grants excluded).
    pub decision: u64,
    /// Ids eligible to be picked: unfinished, non-stalled tasks (`id <
    /// n_tasks`), plus — under [`MemoryModel::StoreBuffer`] — virtual
    /// flush ids (`id ≥ n_tasks`) naming pending store-buffer entries.
    /// Never empty.
    pub runnable: &'a [usize],
    /// All unfinished tasks (runnable plus stalled spinners).
    pub unfinished: &'a [usize],
    /// Total number of tasks in the run.
    pub n_tasks: usize,
    /// The task granted the previous turn, if any.
    pub last: Option<usize>,
}

/// A scheduling policy: picks, at every decision point, which task moves.
///
/// Implementations must be deterministic functions of their own state and
/// the [`PickView`] — that is what makes a `(strategy, seed)` pair name an
/// execution exactly. A pick may be a virtual flush id (see
/// [`PickView::runnable`]); strategies that treat ids as task indices must
/// fall back to something deterministic for ids `≥ n_tasks`.
pub trait Strategy {
    /// Picks the next id to run from `view.runnable`.
    fn pick(&mut self, view: &PickView<'_>) -> usize;
}

/// Fair deterministic baseline: cycles through runnable ids in order.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Strategy for RoundRobin {
    fn pick(&mut self, view: &PickView<'_>) -> usize {
        let t = view.runnable.iter().copied().find(|&t| t >= self.next).unwrap_or(view.runnable[0]);
        self.next = t + 1;
        t
    }
}

/// Replays a recorded decision sequence (a failure's `schedule`), then
/// falls back to round-robin once the recording is exhausted.
///
/// Because every other source of nondeterminism is excluded — including
/// weak-memory flush points, which are themselves recorded decisions —
/// replaying the decisions of a failing run reproduces it exactly; this is
/// the single-line replay the checker prints on failure.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    decisions: Vec<u16>,
    pos: usize,
    tail: RoundRobin,
}

impl Replay {
    /// Builds a replayer from a recorded decision sequence.
    pub fn new(decisions: Vec<u16>) -> Self {
        Self { decisions, pos: 0, tail: RoundRobin::default() }
    }
}

impl Strategy for Replay {
    fn pick(&mut self, view: &PickView<'_>) -> usize {
        if let Some(&t) = self.decisions.get(self.pos) {
            self.pos += 1;
            let t = t as usize;
            assert!(
                view.runnable.contains(&t),
                "replay diverged: recorded pick {t} is not runnable at decision {} \
                 (runnable {:?})",
                self.pos - 1,
                view.runnable
            );
            return t;
        }
        self.tail.pick(view)
    }
}

// ---------------------------------------------------------------------
// The controller
// ---------------------------------------------------------------------

/// Why a scheduled run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Every unfinished task is spinning on a variable nobody will ever
    /// change — and no buffered store remains that could change one —
    /// confirmed by a bounded grace phase.
    Deadlock {
        /// One line per wedged task: its id and the operation it repeats.
        wedged: Vec<String>,
    },
    /// The step budget ran out before all tasks finished — livelock or a
    /// budget set too low for the workload.
    Budget {
        /// The exhausted budget.
        steps: u64,
    },
    /// A task panicked (an oracle violation or a bug in the code under
    /// test).
    Panic {
        /// Which task panicked.
        task: usize,
        /// Its panic message.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { wedged } => {
                write!(f, "deadlock: {}", wedged.join("; "))
            }
            RunError::Budget { steps } => write!(f, "step budget ({steps}) exhausted"),
            RunError::Panic { task, message } => write!(f, "task {task} panicked: {message}"),
        }
    }
}

/// Result of one scheduled execution.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Turns granted (including deadlock-confirmation grants) plus flush
    /// decisions executed.
    pub steps: u64,
    /// The strategy's decisions, in order — feed to [`Replay`] to
    /// reproduce this execution exactly.
    pub schedule: Vec<u16>,
    /// `Ok(())` if every task ran to completion under the oracles.
    pub result: Result<(), RunError>,
}

/// Runs `bodies` to completion under [`MemoryModel::SeqCst`] — see
/// [`run_tasks_in`].
pub fn run_tasks(
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    strategy: &mut dyn Strategy,
    budget: u64,
) -> RunOutcome {
    run_tasks_in(bodies, strategy, budget, MemoryModel::SeqCst)
}

/// Runs `bodies` (one OS thread each) to completion under `strategy` and
/// the given [`MemoryModel`], granting at most `budget` turns. See the
/// module docs for the execution model.
///
/// Construct every lock and every [`Sched`] variable *before* calling this
/// (on the calling thread) and keep them alive until it returns — under
/// [`MemoryModel::StoreBuffer`] the controller writes buffered stores back
/// through pointers to those variables. Size step budgets generously: a
/// correct lock under a fair-ish strategy finishes small configurations in
/// well under a thousand steps.
///
/// # Panics
///
/// Panics if `bodies` is empty, has more than `u16::MAX` tasks, or if the
/// turn protocol itself wedges (a bug in this module, not in the code
/// under test).
pub fn run_tasks_in(
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    strategy: &mut dyn Strategy,
    budget: u64,
    model: MemoryModel,
) -> RunOutcome {
    let n = bodies.len();
    assert!(n > 0, "run_tasks needs at least one task");
    assert!(
        n.saturating_mul(1 + STORE_BUFFER_CAP) <= u16::MAX as usize,
        "too many tasks for the decision encoding"
    );
    let shared = Arc::new(Shared::new(n, model == MemoryModel::StoreBuffer));

    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(id, body)| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rmr-sched-task-{id}"))
                .spawn(move || task_main(id, shared, body))
                .expect("spawning scheduler task thread")
        })
        .collect();

    let mut steps: u64 = 0;
    let mut schedule: Vec<u16> = Vec::new();
    let mut last: Option<usize> = None;

    // Arrival barrier: wait until every task is parked at its pre-body
    // yield point (or already finished), so the first decision sees the
    // full candidate set regardless of OS spawn timing.
    let mut st = shared.lock_state();
    st = shared
        .wait_until(st, |s| (0..n).all(|i| s.waiting[i] || s.finished[i]) && s.current.is_none());

    let result = 'run: loop {
        let unfinished: Vec<usize> = (0..n).filter(|&i| !st.finished[i]).collect();
        if unfinished.is_empty() {
            // Retire every write buffer (task order, FIFO within each) so
            // post-run inspection sees the final memory state.
            for t in 0..n {
                while let Some(e) = st.buffers[t].pop_front() {
                    st.apply_flush(e);
                }
            }
            break 'run Ok(());
        }
        if let Some(task) = (0..n).find(|&i| st.panics[i].is_some()) {
            let message = st.panics[task].clone().unwrap();
            break 'run Err(RunError::Panic { task, message });
        }
        if steps >= budget {
            break 'run Err(RunError::Budget { steps });
        }

        let flushes = st.flush_candidates(n);
        let mut runnable: Vec<usize> =
            unfinished.iter().copied().filter(|&i| !st.stall[i].stalled()).collect();
        runnable.extend(flushes.iter().map(|&(_, _, vid)| vid));

        let pick = if runnable.is_empty() {
            // All spinning and nothing left to flush: confirmation phase.
            // Grant each wedged task a bounded number of extra turns
            // (round-robin, deterministic); if any of them makes visible
            // progress — a non-load op, or a load that sees a new value —
            // normal scheduling resumes.
            let mut revived = false;
            'confirm: for _round in 0..CONFIRM_STEPS_PER_TASK {
                for &t in &unfinished {
                    if st.finished[t] || st.panics[t].is_some() {
                        revived = true;
                        break 'confirm;
                    }
                    st.current = Some(t);
                    shared.cv.notify_all();
                    st = shared.wait_until(st, |s| s.current.is_none());
                    steps += 1;
                    let someone_moved = (0..n).any(|i| !st.finished[i] && !st.stall[i].stalled())
                        || !st.flush_candidates(n).is_empty();
                    if someone_moved || (0..n).any(|i| st.panics[i].is_some()) {
                        revived = true;
                        break 'confirm;
                    }
                    if steps >= budget {
                        break 'confirm;
                    }
                }
            }
            if revived || steps >= budget {
                continue 'run;
            }
            let wedged = unfinished
                .iter()
                .map(|&i| {
                    let op = st.pending[i];
                    let seen = st.stall[i];
                    match (op, seen.last) {
                        (Some(op), Some((var, obs))) => format!(
                            "task {i} spinning on v{var} (op {:?}, sees {}, ×{})",
                            op.kind, obs.value, seen.streak
                        ),
                        _ => format!("task {i} wedged"),
                    }
                })
                .collect();
            break 'run Err(RunError::Deadlock { wedged });
        } else {
            let view = PickView {
                decision: schedule.len() as u64,
                runnable: &runnable,
                unfinished: &unfinished,
                n_tasks: n,
                last,
            };
            let pick = strategy.pick(&view);
            assert!(
                runnable.contains(&pick),
                "strategy picked {pick}, not in runnable {runnable:?}"
            );
            schedule.push(pick as u16);
            pick
        };

        if pick >= n {
            // A flush decision: land the named buffered store. The
            // controller applies it directly — a write-back needs no help
            // from the owning core.
            let &(task, idx, _) = flushes
                .iter()
                .find(|&&(_, _, vid)| vid == pick)
                .expect("picked flush id is a current candidate");
            let entry = st.buffers[task].remove(idx).expect("flush candidate index in range");
            st.apply_flush(entry);
            steps += 1;
            continue 'run;
        }

        last = Some(pick);
        st.current = Some(pick);
        shared.cv.notify_all();
        st = shared.wait_until(st, |s| s.current.is_none());
        steps += 1;
    };

    // Tear down: poison so parked tasks unwind instead of leaking, then
    // reap every thread.
    if result.is_err() {
        st.poisoned = true;
        shared.cv.notify_all();
    }
    st = shared.wait_until(st, |s| (0..n).all(|i| s.finished[i]));
    drop(st);
    for h in handles {
        // Aborted tasks panicked by design; their join errors are expected.
        let _ = h.join();
    }

    RunOutcome { steps, schedule, result }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AndersonLock, RawMutex, TicketLock};
    use std::sync::atomic::AtomicUsize;
    use Ordering::{Acquire, Relaxed, Release, SeqCst};

    fn boxed(f: impl FnOnce() + Send + 'static) -> Box<dyn FnOnce() + Send> {
        Box::new(f)
    }

    #[test]
    fn unregistered_threads_run_natively() {
        let w = <Sched as Backend>::Word::new(3);
        assert_eq!(w.fetch_add(2, SeqCst), 3);
        assert_eq!(w.load(Acquire), 5);
        let b = <Sched as Backend>::Bool::new(false);
        assert!(!b.swap(true, Acquire));
        assert_eq!(b.compare_exchange(true, false, SeqCst, SeqCst), Ok(true));
    }

    #[test]
    fn round_robin_interleaves_deterministically() {
        let run = || {
            let w = Arc::new(<Sched as Backend>::Word::new(0));
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..3 {
                let w = Arc::clone(&w);
                tasks.push(boxed(move || {
                    for _ in 0..4 {
                        w.fetch_add(1, SeqCst);
                    }
                }));
            }
            let out = run_tasks(tasks, &mut RoundRobin::default(), 1_000);
            assert!(out.result.is_ok(), "{:?}", out.result);
            (out.schedule, w.load(SeqCst))
        };
        let (s1, v1) = run();
        let (s2, v2) = run();
        assert_eq!(s1, s2, "same strategy, same schedule");
        assert_eq!((v1, v2), (12, 12));
    }

    #[test]
    fn spinning_task_is_descheduled_until_the_flag_flips() {
        // Task 0 spins on a flag only task 1 sets. Round-robin would grant
        // them alternately; the stall tracker must keep the run finite
        // regardless of strategy.
        let flag = Arc::new(<Sched as Backend>::Bool::new(false));
        let f0 = Arc::clone(&flag);
        let f1 = Arc::clone(&flag);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            boxed(move || crate::spin_until(|| f0.load(SeqCst))),
            boxed(move || f1.store(true, SeqCst)),
        ];
        let out = run_tasks(tasks, &mut RoundRobin::default(), 10_000);
        assert!(out.result.is_ok(), "{:?}", out.result);
        assert!(out.steps < 100, "stall detection failed: {} steps", out.steps);
    }

    #[test]
    fn true_deadlock_is_reported() {
        // Two tasks each spin on a flag only the other would set — after
        // spinning. Classic circular wait.
        let a = Arc::new(<Sched as Backend>::Bool::new(false));
        let b = Arc::new(<Sched as Backend>::Bool::new(false));
        let (a0, b0) = (Arc::clone(&a), Arc::clone(&b));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            boxed(move || {
                crate::spin_until(|| a0.load(SeqCst));
                b0.store(true, SeqCst);
            }),
            boxed(move || {
                crate::spin_until(|| b1.load(SeqCst));
                a1.store(true, SeqCst);
            }),
        ];
        let out = run_tasks(tasks, &mut RoundRobin::default(), 100_000);
        match out.result {
            Err(RunError::Deadlock { ref wedged }) => {
                assert_eq!(wedged.len(), 2, "{wedged:?}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn task_panic_is_surfaced_not_hung() {
        let tasks: Vec<Box<dyn FnOnce() + Send>> =
            vec![boxed(|| panic!("oracle says no")), boxed(|| {})];
        let out = run_tasks(tasks, &mut RoundRobin::default(), 1_000);
        match out.result {
            Err(RunError::Panic { task: 0, ref message }) => {
                assert!(message.contains("oracle says no"), "{message}");
            }
            other => panic!("expected task-0 panic, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let w = Arc::new(<Sched as Backend>::Word::new(0));
        let w0 = Arc::clone(&w);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![boxed(move || {
            for _ in 0..100 {
                w0.fetch_add(1, SeqCst);
            }
        })];
        let out = run_tasks(tasks, &mut RoundRobin::default(), 10);
        assert_eq!(out.result, Err(RunError::Budget { steps: 10 }));
    }

    #[test]
    fn replay_reproduces_a_recorded_schedule() {
        let run = |strategy: &mut dyn Strategy| {
            let w = Arc::new(<Sched as Backend>::Word::new(0));
            let trace = Arc::new(Mutex::new(Vec::new()));
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for id in 0..3u64 {
                let w = Arc::clone(&w);
                let trace = Arc::clone(&trace);
                tasks.push(boxed(move || {
                    for _ in 0..3 {
                        let seen = w.fetch_add(1, SeqCst);
                        trace.lock().unwrap().push((id, seen));
                    }
                }));
            }
            let out = run_tasks(tasks, strategy, 1_000);
            assert!(out.result.is_ok());
            let observed = trace.lock().unwrap().clone();
            (out.schedule, observed)
        };
        let (schedule, trace1) = run(&mut RoundRobin::default());
        let (schedule2, trace2) = run(&mut Replay::new(schedule.clone()));
        assert_eq!(schedule, schedule2);
        assert_eq!(trace1, trace2, "replay must reproduce the observable history");
    }

    #[test]
    fn real_mutexes_run_under_the_scheduler() {
        for capacity in [2usize, 4] {
            let lock = Arc::new(AndersonLock::new_in(capacity, Sched));
            let in_cs = Arc::new(AtomicUsize::new(0));
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for _ in 0..2 {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                tasks.push(boxed(move || {
                    for _ in 0..2 {
                        let t = lock.lock();
                        assert_eq!(in_cs.fetch_add(1, SeqCst), 0);
                        yield_point();
                        in_cs.fetch_sub(1, SeqCst);
                        lock.unlock(t);
                    }
                }));
            }
            let out = run_tasks(tasks, &mut RoundRobin::default(), 10_000);
            assert!(out.result.is_ok(), "{:?}", out.result);
        }

        let lock = Arc::new(TicketLock::new_in(Sched));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..3 {
            let lock = Arc::clone(&lock);
            tasks.push(boxed(move || {
                let t = lock.lock();
                lock.unlock(t);
            }));
        }
        let out = run_tasks(tasks, &mut RoundRobin::default(), 10_000);
        assert!(out.result.is_ok(), "{:?}", out.result);
    }

    // -- weak-memory mode ---------------------------------------------

    /// Runs the two-task body pair under every schedule a simple DFS over
    /// decision prefixes reaches, collecting `collect()`'s value after
    /// each clean run. Tiny bodies only — this is exhaustive.
    #[allow(clippy::type_complexity)]
    fn weak_outcomes<T: Ord + Clone + fmt::Debug>(
        mk: &dyn Fn() -> (Vec<Box<dyn FnOnce() + Send>>, Box<dyn Fn() -> T>),
        budget: u64,
    ) -> std::collections::BTreeSet<T> {
        // Depth-first over decision prefixes: re-run with `prefix`, record
        // the runnable set at each decision, then advance the deepest
        // un-exhausted decision. Complete for loop-free bodies.
        struct Recorder {
            prefix: Vec<u16>,
            pos: usize,
            seen: Vec<Vec<u16>>,
            taken: Vec<u16>,
        }
        impl Strategy for Recorder {
            fn pick(&mut self, view: &PickView<'_>) -> usize {
                let choices: Vec<u16> = view.runnable.iter().map(|&t| t as u16).collect();
                let pick = if self.pos < self.prefix.len() {
                    let p = self.prefix[self.pos];
                    assert!(choices.contains(&p), "dfs prefix diverged");
                    p
                } else {
                    choices[0]
                };
                self.pos += 1;
                self.seen.push(choices);
                self.taken.push(pick);
                pick as usize
            }
        }

        let mut outcomes = std::collections::BTreeSet::new();
        let mut prefix: Vec<u16> = Vec::new();
        for _run in 0..20_000 {
            let (tasks, collect) = mk();
            let mut rec =
                Recorder { prefix: prefix.clone(), pos: 0, seen: Vec::new(), taken: Vec::new() };
            let out = run_tasks_in(tasks, &mut rec, budget, MemoryModel::StoreBuffer);
            assert!(out.result.is_ok(), "litmus bodies must not fail: {:?}", out.result);
            outcomes.insert(collect());
            // Advance to the next unexplored branch.
            let mut next: Option<Vec<u16>> = None;
            for d in (0..rec.taken.len()).rev() {
                let choices = &rec.seen[d];
                let at = choices.iter().position(|&c| c == rec.taken[d]).unwrap();
                if at + 1 < choices.len() {
                    let mut p: Vec<u16> = rec.taken[..d].to_vec();
                    p.push(choices[at + 1]);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => prefix = p,
                None => return outcomes, // space exhausted
            }
        }
        panic!("DFS did not exhaust the schedule space");
    }

    #[test]
    fn weak_mode_reorders_relaxed_stores() {
        // Message passing with a Relaxed flag: the flag may overtake the
        // data, so a reader can see flag=1, data=0 — and under SeqCst-mode
        // semantics it never could. This is the canonical behavior the
        // weak mode must add.
        let mk = || {
            let data = Arc::new(<Sched as Backend>::Word::new(0));
            let flag = Arc::new(<Sched as Backend>::Word::new(0));
            let seen = Arc::new(AtomicU64::new(u64::MAX));
            let (d0, f0) = (Arc::clone(&data), Arc::clone(&flag));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let s1 = Arc::clone(&seen);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(move || {
                    d0.store(1, Relaxed);
                    f0.store(1, Relaxed);
                }),
                Box::new(move || {
                    if f1.load(Acquire) == 1 {
                        s1.store(d1.load(Acquire), SeqCst);
                    }
                }),
            ];
            let collect: Box<dyn Fn() -> u64> = Box::new(move || seen.load(SeqCst));
            (tasks, collect)
        };
        let outcomes = weak_outcomes(&mk, 10_000);
        assert!(outcomes.contains(&0), "relaxed flag must be able to overtake the data");
        assert!(outcomes.contains(&1), "the in-order outcome must of course remain");
    }

    #[test]
    fn weak_mode_release_store_keeps_earlier_stores_visible() {
        // Same shape with a Release flag: a Release entry flushes only
        // from the buffer front, so data=1 is in memory before flag=1 ever
        // is, and the stale outcome is forbidden.
        let mk = || {
            let data = Arc::new(<Sched as Backend>::Word::new(0));
            let flag = Arc::new(<Sched as Backend>::Word::new(0));
            let seen = Arc::new(AtomicU64::new(u64::MAX));
            let (d0, f0) = (Arc::clone(&data), Arc::clone(&flag));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let s1 = Arc::clone(&seen);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(move || {
                    d0.store(1, Relaxed);
                    f0.store(1, Release);
                }),
                Box::new(move || {
                    if f1.load(Acquire) == 1 {
                        s1.store(d1.load(Acquire), SeqCst);
                    }
                }),
            ];
            let collect: Box<dyn Fn() -> u64> = Box::new(move || seen.load(SeqCst));
            (tasks, collect)
        };
        let outcomes = weak_outcomes(&mk, 10_000);
        assert!(!outcomes.contains(&0), "release publication must not be overtaken: {outcomes:?}");
        assert!(outcomes.contains(&1));
    }

    #[test]
    fn weak_mode_forwards_own_stores() {
        // A task always reads its own buffered store (store forwarding),
        // even though nobody else can see it yet.
        let w = Arc::new(<Sched as Backend>::Word::new(0));
        let w0 = Arc::clone(&w);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            w0.store(7, Relaxed);
            assert_eq!(w0.load(Relaxed), 7, "own store must forward");
        })];
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 1_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
        assert_eq!(w.load(SeqCst), 7, "task exit must drain the buffer");
    }

    #[test]
    fn weak_mode_rmw_and_seqcst_store_drain() {
        // An RMW (and a SeqCst store) acts on memory and drains the
        // performer's buffer first, so earlier relaxed stores become
        // visible no later than the RMW.
        let a = Arc::new(<Sched as Backend>::Word::new(0));
        let b = Arc::new(<Sched as Backend>::Word::new(0));
        let (a0, b0) = (Arc::clone(&a), Arc::clone(&b));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            a0.store(5, Relaxed);
            b0.fetch_add(1, Relaxed); // drains: a=5 lands first
            assert_eq!(a0.load(Relaxed), 5);
        })];
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 1_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
        assert_eq!((a.load(SeqCst), b.load(SeqCst)), (5, 1));
    }

    #[test]
    fn weak_mode_spinner_survives_buffered_wakeup() {
        // The store that would wake a spinner sits in a buffer: the run
        // must not be declared deadlocked — the flush candidate keeps the
        // runnable set non-empty until the store lands.
        let flag = Arc::new(<Sched as Backend>::Bool::new(false));
        let f0 = Arc::clone(&flag);
        let f1 = Arc::clone(&flag);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            boxed(move || crate::spin_until(|| f0.load(Acquire))),
            boxed(move || f1.store(true, Release)),
        ];
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 10_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
    }

    #[test]
    fn weak_mode_buffer_overflow_flushes_oldest() {
        // More pending relaxed stores than the buffer holds: the oldest
        // spills to memory in FIFO order, so a same-var overwrite is
        // never reordered before an older value.
        let vars: Vec<Arc<SchedWord>> =
            (0..STORE_BUFFER_CAP + 2).map(|_| Arc::new(<Sched as Backend>::Word::new(0))).collect();
        let mine = vars.clone();
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            for (i, v) in mine.iter().enumerate() {
                v.store(i as u64 + 1, Relaxed);
            }
        })];
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 1_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.load(SeqCst), i as u64 + 1);
        }
    }

    #[test]
    fn weak_mode_release_fence_drains() {
        let w = Arc::new(<Sched as Backend>::Word::new(0));
        let w0 = Arc::clone(&w);
        let probe = Arc::new(AtomicU64::new(0));
        let p0 = Arc::clone(&probe);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(move || {
            w0.store(3, Relaxed);
            Sched::fence(Release);
            // After the fence the store is in memory, not just forwarded.
            p0.store(w0.load(Relaxed), SeqCst);
        })];
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 1_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
        assert_eq!(probe.load(SeqCst), 3);
    }

    #[test]
    fn weak_mode_replays_flush_decisions() {
        // A recorded weak-mode schedule (task turns + flush ids) must
        // replay to the same observable history.
        let run = |strategy: &mut dyn Strategy| {
            let data = Arc::new(<Sched as Backend>::Word::new(0));
            let flag = Arc::new(<Sched as Backend>::Word::new(0));
            let seen = Arc::new(AtomicU64::new(u64::MAX));
            let (d0, f0) = (Arc::clone(&data), Arc::clone(&flag));
            let (d1, f1) = (Arc::clone(&data), Arc::clone(&flag));
            let s1 = Arc::clone(&seen);
            let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
                Box::new(move || {
                    d0.store(1, Relaxed);
                    f0.store(1, Relaxed);
                }),
                Box::new(move || {
                    if f1.load(Acquire) == 1 {
                        s1.store(d1.load(Acquire), SeqCst);
                    }
                }),
            ];
            let out = run_tasks_in(tasks, strategy, 10_000, MemoryModel::StoreBuffer);
            assert!(out.result.is_ok(), "{:?}", out.result);
            (out.schedule, seen.load(SeqCst))
        };
        let (schedule, seen1) = run(&mut RoundRobin::default());
        let (schedule2, seen2) = run(&mut Replay::new(schedule.clone()));
        assert_eq!(schedule, schedule2);
        assert_eq!(seen1, seen2);
    }

    #[test]
    fn weak_mode_runs_a_real_lock() {
        // The full mutex battery shape, weak mode: exclusion must hold
        // because the lock's annotations are (supposed to be) sound.
        let lock = Arc::new(TicketLock::new_in(Sched));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            tasks.push(boxed(move || {
                for _ in 0..2 {
                    let t = lock.lock();
                    assert_eq!(in_cs.fetch_add(1, SeqCst), 0, "exclusion broke under weak memory");
                    yield_point();
                    in_cs.fetch_sub(1, SeqCst);
                    lock.unlock(t);
                }
            }));
        }
        let out = run_tasks_in(tasks, &mut RoundRobin::default(), 10_000, MemoryModel::StoreBuffer);
        assert!(out.result.is_ok(), "{:?}", out.result);
    }

    #[test]
    fn backend_name() {
        assert_eq!(Sched::NAME, "sched");
    }
}
