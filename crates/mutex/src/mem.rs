//! The memory-backend layer: shared variables generic over *how* they are
//! measured.
//!
//! Every algorithm in this workspace is written against a small vocabulary
//! of shared variables — boolean flags (gates, permits, lock slots) and
//! 64-bit words (counters, CAS cells, the packed two-component fetch&add
//! variables of `rmr-core`). This module abstracts that vocabulary behind
//! the [`Backend`] trait so the *same* lock code can run in several modes:
//!
//! * [`Native`] — `#[repr(transparent)]` newtypes over `std::sync::atomic`
//!   types, every method `#[inline]` and forwarding its [`Ordering`]
//!   argument verbatim. After monomorphization this is exactly the
//!   hand-written code: zero cost, and the default everywhere
//!   (`Lock<B = Native>`), so public APIs are unchanged.
//! * [`SeqCstNative`] — [`Native`] with every ordering argument *ignored*
//!   and strengthened to `SeqCst`: the pre-relaxation workspace policy as
//!   a selectable backend, kept so the `uncontended_table` bench (E18) can
//!   measure exactly what the per-site relaxation buys on real silicon.
//! * [`Counting`] — the same `std` atomics plus per-variable *cached-copy
//!   accounting* that replicates `rmr-sim`'s CC and DSM cost models on the
//!   shipped implementations. Every access tallies, in thread-local
//!   counters, whether it was a remote memory reference (RMR) under each
//!   model. This closes the gap between "the line-level *model* of the
//!   algorithm is O(1) RMR" (experiments E6–E8) and "the code you would
//!   actually deploy is O(1) RMR" (experiment E13, the `real_rmr_table`
//!   binary in `rmr-bench`).
//!
//! A fourth backend, [`Sched`](crate::sched::Sched), lives in
//! [`crate::sched`]: it routes every operation through a deterministic
//! cooperative scheduler so the shipped lock code can be model-checked
//! interleaving by interleaving (the `rmr-check` crate, experiment E14).
//! Its weak-memory mode is the machine check behind every relaxed
//! annotation in the workspace (DESIGN.md §13).
//!
//! # The ordering policy (DESIGN.md §5 and §13)
//!
//! Until PR 7 every operation was `SeqCst` — a blanket rule baked into the
//! vocabulary. The vocabulary now takes an explicit [`Ordering`] per call,
//! and every call site in the workspace annotates the *weakest ordering
//! its proof obligation permits*, with the invariant argument written at
//! the site and collected in DESIGN.md §13. The annotations are verified,
//! not trusted: the `Sched` backend's weak-memory mode (per-task store
//! buffers with nondeterministic flush points) re-runs the full `rmr-check`
//! batteries over the relaxed code, and `WrongOrdering` mutants prove the
//! batteries would catch a demotion of each load-bearing site.
//!
//! The RMR *accounting* is deliberately ordering-blind: [`Counting`]
//! charges a read or an update identically whatever the annotation, so the
//! E13/E17 acceptance proofs hold under any policy (pinned by a seeded
//! property test in `rmr-bench`).
//!
//! # The cost models (must match `rmr-sim/src/cost.rs`)
//!
//! **CC (cache-coherent, write-invalidate).** Each [`Counting`] variable
//! carries a 64-bit *cached-copy set*: bit `s` is set iff the thread
//! occupying slot `s` holds a valid cached copy. A read is an RMR iff the
//! reader's bit is clear (cold miss / invalidated), and then sets it. Any
//! update — store, swap, fetch&add, CAS *successful or not* — is an RMR
//! unless the updater is the *sole* holder, and leaves the updater as sole
//! holder (invalidating everyone else). Local spinning on a cached
//! variable is therefore free, which is exactly the property the paper's
//! algorithms exploit.
//!
//! **DSM (distributed shared memory).** Every variable is homed in the
//! memory module of process [`DSM_HOME`] (slot 0), matching the
//! `DsmModel::all_at(0)` placement the simulator sweeps use: an access is
//! an RMR iff the accessor occupies a different slot, and *every* poll of
//! a remote variable is charged — the reason the paper's constant bound is
//! CC-only.
//!
//! Threads participate by claiming a slot in `0..`[`MAX_SLOTS`] with
//! [`set_thread_slot`] (the measurement harness uses the thread's lock
//! pid). Tallies are read with [`thread_tally`] and cleared with
//! [`reset_thread_tally`], which is what a per-passage measurement loop
//! does around each acquire/release pair.
//!
//! Under concurrency the copy-set updates interleave with (rather than
//! atomically accompany) the accesses they describe, so concurrent tallies
//! are a faithful sample rather than a replay-exact trace; on a
//! single-threaded schedule the tallies equal `rmr-sim`'s models *exactly*
//! (cross-validated in `rmr-bench/tests/counting_backend.rs`).
//!
//! # Example
//!
//! ```
//! use rmr_mutex::mem::{self, Backend, Counting, Ordering, SharedWord};
//!
//! let w = <Counting as Backend>::Word::new(0);
//! mem::set_thread_slot(3);
//! mem::reset_thread_tally();
//! // update by slot 3: CC RMR (not sole holder), DSM RMR (home is slot 0)
//! w.fetch_add(1, Ordering::SeqCst);
//! // sole holder now: cached, CC-free; still a DSM RMR — and the tally is
//! // identical whatever ordering the call is annotated with
//! let _ = w.load(Ordering::Relaxed);
//! let t = mem::thread_tally();
//! assert_eq!((t.cc, t.dsm, t.ops), (1, 2, 2));
//! ```

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64};

pub use std::sync::atomic::Ordering;

/// Maximum number of concurrently measured threads under [`Counting`]
/// (one bit per thread in each variable's cached-copy set, like
/// `rmr-sim`'s `CcModel`).
pub const MAX_SLOTS: usize = 64;

/// The slot whose memory module homes every variable under the DSM model
/// (matching the simulator's `DsmModel::all_at(0)` placement).
pub const DSM_HOME: usize = 0;

// ---------------------------------------------------------------------
// The backend trait and the shared-variable vocabulary
// ---------------------------------------------------------------------

/// A memory backend: the family of shared-variable types an algorithm's
/// shared state is built from.
///
/// Backends are zero-sized markers (`Native`, `Counting`); algorithm types
/// take `B: Backend = Native` so existing code compiles unchanged, and the
/// `new_in(.., backend)` constructors let callers pick the backend by
/// value without turbofish.
///
/// Every operation takes an explicit [`Ordering`]; call sites annotate the
/// weakest ordering their invariant argument permits (DESIGN.md §13), and
/// the `Sched` backend's weak-memory mode verifies those arguments by
/// model checking the relaxed code.
pub trait Backend: Copy + Default + Send + Sync + 'static {
    /// A shared boolean (gates, permits, flags, lock slots).
    type Bool: SharedBool;
    /// A shared 64-bit word (counters, CAS cells, packed F&A variables,
    /// pid-or-sentinel words like Figure 2's `X` and Figure 4's
    /// `W-token`).
    type Word: SharedWord;

    /// Short, stable name for reports ("native", "counting").
    const NAME: &'static str;

    /// A memory fence with the given ordering, affecting this backend's
    /// variables. For the std-atomic backends this is
    /// `std::sync::atomic::fence`; the `Sched` backend routes it through
    /// the scheduler (in weak-memory mode a `Release`-or-stronger fence
    /// drains the calling task's store buffer).
    ///
    /// # Panics
    ///
    /// Panics if `order` is `Relaxed` (like `std::sync::atomic::fence`).
    fn fence(order: Ordering);
}

/// A shared atomic boolean; every operation takes an explicit [`Ordering`].
pub trait SharedBool: Send + Sync + 'static {
    /// Creates the variable holding `value`.
    fn new(value: bool) -> Self
    where
        Self: Sized;

    /// Atomic read.
    fn load(&self, order: Ordering) -> bool;

    /// Atomic write.
    fn store(&self, value: bool, order: Ordering);

    /// Atomic swap; returns the previous value.
    fn swap(&self, value: bool, order: Ordering) -> bool;

    /// Atomic compare-and-swap; `Ok(previous)` iff the exchange happened.
    /// `success`/`failure` follow the `std` contract (`failure` must not
    /// be `Release` or `AcqRel`).
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool>;
}

/// A shared atomic 64-bit word; every operation takes an explicit
/// [`Ordering`].
pub trait SharedWord: Send + Sync + 'static {
    /// Creates the variable holding `value`.
    fn new(value: u64) -> Self
    where
        Self: Sized;

    /// Atomic read.
    fn load(&self, order: Ordering) -> u64;

    /// Atomic write.
    fn store(&self, value: u64, order: Ordering);

    /// Atomic swap; returns the previous value.
    fn swap(&self, value: u64, order: Ordering) -> u64;

    /// Wrapping atomic fetch&add; returns the previous value.
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64;

    /// Wrapping atomic fetch&subtract; returns the previous value.
    fn fetch_sub(&self, delta: u64, order: Ordering) -> u64;

    /// Atomic compare-and-swap; `Ok(previous)` iff the exchange happened.
    /// `success`/`failure` follow the `std` contract (`failure` must not
    /// be `Release` or `AcqRel`).
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
}

// ---------------------------------------------------------------------
// Native: transparent newtypes over std atomics
// ---------------------------------------------------------------------

/// The production backend: transparent wrappers over `std::sync::atomic`,
/// zero-cost after monomorphization — each method is a single direct
/// delegation that forwards its [`Ordering`] argument verbatim, so the
/// per-site annotations reach the hardware unchanged. The default backend
/// of every lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Native;

impl Backend for Native {
    type Bool = NativeBool;
    type Word = NativeWord;

    const NAME: &'static str = "native";

    #[inline]
    fn fence(order: Ordering) {
        std::sync::atomic::fence(order);
    }
}

/// [`Native`]'s boolean: a `#[repr(transparent)]` `AtomicBool`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct NativeBool(AtomicBool);

impl SharedBool for NativeBool {
    #[inline]
    fn new(value: bool) -> Self {
        Self(AtomicBool::new(value))
    }

    #[inline]
    fn load(&self, order: Ordering) -> bool {
        self.0.load(order)
    }

    #[inline]
    fn store(&self, value: bool, order: Ordering) {
        self.0.store(value, order);
    }

    #[inline]
    fn swap(&self, value: bool, order: Ordering) -> bool {
        self.0.swap(value, order)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.0.compare_exchange(current, new, success, failure)
    }
}

/// [`Native`]'s word: a `#[repr(transparent)]` `AtomicU64`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct NativeWord(AtomicU64);

impl SharedWord for NativeWord {
    #[inline]
    fn new(value: u64) -> Self {
        Self(AtomicU64::new(value))
    }

    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    #[inline]
    fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order);
    }

    #[inline]
    fn swap(&self, value: u64, order: Ordering) -> u64 {
        self.0.swap(value, order)
    }

    #[inline]
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        self.0.fetch_add(delta, order)
    }

    #[inline]
    fn fetch_sub(&self, delta: u64, order: Ordering) -> u64 {
        self.0.fetch_sub(delta, order)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, success, failure)
    }
}

// ---------------------------------------------------------------------
// SeqCstNative: the pre-relaxation policy as a selectable backend
// ---------------------------------------------------------------------

/// [`Native`] with every [`Ordering`] argument ignored and strengthened to
/// `SeqCst` — the workspace's pre-PR-7 blanket policy, preserved as a
/// backend so its cost is measurable rather than historical. The
/// `uncontended_table` bench (E18) runs every lock once over [`Native`]
/// (per-site orderings) and once over this backend (blanket `SeqCst`); the
/// delta is what the relaxation bought on the host.
///
/// Semantically this backend is always correct wherever [`Native`] is:
/// strengthening orderings never introduces behaviors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqCstNative;

impl Backend for SeqCstNative {
    type Bool = SeqCstBool;
    type Word = SeqCstWord;

    const NAME: &'static str = "seqcst";

    #[inline]
    fn fence(order: Ordering) {
        // Keep std's Relaxed panic, then strengthen.
        assert!(order != Ordering::Relaxed, "there is no such thing as a relaxed fence");
        std::sync::atomic::fence(Ordering::SeqCst);
    }
}

/// [`SeqCstNative`]'s boolean: a `#[repr(transparent)]` `AtomicBool`
/// that upgrades every operation to `SeqCst`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SeqCstBool(AtomicBool);

impl SharedBool for SeqCstBool {
    #[inline]
    fn new(value: bool) -> Self {
        Self(AtomicBool::new(value))
    }

    #[inline]
    fn load(&self, _order: Ordering) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, value: bool, _order: Ordering) {
        self.0.store(value, Ordering::SeqCst);
    }

    #[inline]
    fn swap(&self, value: bool, _order: Ordering) -> bool {
        self.0.swap(value, Ordering::SeqCst)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// [`SeqCstNative`]'s word: a `#[repr(transparent)]` `AtomicU64` that
/// upgrades every operation to `SeqCst`.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SeqCstWord(AtomicU64);

impl SharedWord for SeqCstWord {
    #[inline]
    fn new(value: u64) -> Self {
        Self(AtomicU64::new(value))
    }

    #[inline]
    fn load(&self, _order: Ordering) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, value: u64, _order: Ordering) {
        self.0.store(value, Ordering::SeqCst);
    }

    #[inline]
    fn swap(&self, value: u64, _order: Ordering) -> u64 {
        self.0.swap(value, Ordering::SeqCst)
    }

    #[inline]
    fn fetch_add(&self, delta: u64, _order: Ordering) -> u64 {
        self.0.fetch_add(delta, Ordering::SeqCst)
    }

    #[inline]
    fn fetch_sub(&self, delta: u64, _order: Ordering) -> u64 {
        self.0.fetch_sub(delta, Ordering::SeqCst)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// Counting: the same semantics plus RMR accounting
// ---------------------------------------------------------------------

/// The measurement backend: identical visible semantics to [`Native`],
/// with every access charged to the calling thread's CC/DSM tallies as
/// described in the module docs.
///
/// The accounting is **ordering-blind**: a read is a read and an update is
/// an update whatever [`Ordering`] the call is annotated with (the RMR
/// cost models predate the C++ memory model and charge coherence traffic,
/// not fences), and the underlying atomics run `SeqCst` so the recorded
/// semantics never depend on the annotation either. A seeded property
/// test in `rmr-bench` pins this, keeping the E13/E17 acceptance proofs
/// valid under any ordering policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counting;

impl Backend for Counting {
    type Bool = CountingBool;
    type Word = CountingWord;

    const NAME: &'static str = "counting";

    #[inline]
    fn fence(order: Ordering) {
        // A fence is not a shared-memory access: no copy-set traffic, no
        // tally. (Neither cost model charges for fences.)
        std::sync::atomic::fence(order);
    }
}

/// Per-thread measurement state: the claimed slot plus the running
/// tallies. Lives in one `Cell` so the accounting fast path is two loads
/// and a store.
#[derive(Clone, Copy)]
struct ThreadState {
    slot: usize,
    cc: u64,
    dsm: u64,
    ops: u64,
}

thread_local! {
    static THREAD: Cell<ThreadState> =
        const { Cell::new(ThreadState { slot: 0, cc: 0, dsm: 0, ops: 0 }) };
}

/// RMR tallies accumulated by the calling thread since the last
/// [`reset_thread_tally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Remote references under the cache-coherent model.
    pub cc: u64,
    /// Remote references under the DSM model (all variables homed at slot
    /// [`DSM_HOME`]).
    pub dsm: u64,
    /// Total shared-memory operations performed (RMR or not).
    pub ops: u64,
}

/// Claims CC/DSM accounting slot `slot` for the calling thread.
///
/// The measurement harness assigns each thread its lock pid. Threads that
/// never call this share slot 0, which is harmless for semantics but
/// muddles attribution — always set the slot before measuring.
///
/// # Panics
///
/// Panics if `slot >= MAX_SLOTS`.
pub fn set_thread_slot(slot: usize) {
    assert!(slot < MAX_SLOTS, "slot {slot} out of range (max {MAX_SLOTS})");
    THREAD.with(|t| {
        let mut s = t.get();
        s.slot = slot;
        t.set(s);
    });
}

/// The calling thread's current accounting slot.
pub fn thread_slot() -> usize {
    THREAD.with(|t| t.get().slot)
}

/// Clears the calling thread's tallies (typically at the start of a
/// measured passage).
pub fn reset_thread_tally() {
    THREAD.with(|t| {
        let mut s = t.get();
        s.cc = 0;
        s.dsm = 0;
        s.ops = 0;
        t.set(s);
    });
}

/// The calling thread's tallies since the last [`reset_thread_tally`].
pub fn thread_tally() -> Tally {
    THREAD.with(|t| {
        let s = t.get();
        Tally { cc: s.cc, dsm: s.dsm, ops: s.ops }
    })
}

/// The cached-copy set of one [`Counting`] variable — the per-variable
/// `holders` word of `rmr-sim`'s `CcModel`, kept inline so no global
/// variable registry is needed.
struct CopySet(AtomicU64);

impl CopySet {
    const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Accounts one read by the calling thread: CC-remote iff it holds no
    /// valid copy (which the read then establishes); DSM-remote iff it is
    /// not the home slot.
    fn read(&self) {
        THREAD.with(|t| {
            let mut s = t.get();
            let bit = 1u64 << s.slot;
            let holders = self.0.fetch_or(bit, Ordering::SeqCst);
            s.cc += u64::from(holders & bit == 0);
            s.dsm += u64::from(s.slot != DSM_HOME);
            s.ops += 1;
            t.set(s);
        });
    }

    /// Accounts one update (store, swap, F&A, CAS — successful or not):
    /// CC-remote unless the updater is the sole holder; afterwards it is.
    fn update(&self) {
        THREAD.with(|t| {
            let mut s = t.get();
            let bit = 1u64 << s.slot;
            let holders = self.0.swap(bit, Ordering::SeqCst);
            s.cc += u64::from(holders != bit);
            s.dsm += u64::from(s.slot != DSM_HOME);
            s.ops += 1;
            t.set(s);
        });
    }
}

/// [`Counting`]'s boolean: an `AtomicBool` plus its cached-copy set.
/// Ordering arguments are ignored (see [`Counting`]): the accounting and
/// the recorded value are both annotation-independent by construction.
pub struct CountingBool {
    value: AtomicBool,
    copies: CopySet,
}

impl SharedBool for CountingBool {
    fn new(value: bool) -> Self {
        Self { value: AtomicBool::new(value), copies: CopySet::new() }
    }

    fn load(&self, _order: Ordering) -> bool {
        self.copies.read();
        self.value.load(Ordering::SeqCst)
    }

    fn store(&self, value: bool, _order: Ordering) {
        self.copies.update();
        self.value.store(value, Ordering::SeqCst);
    }

    fn swap(&self, value: bool, _order: Ordering) -> bool {
        self.copies.update();
        self.value.swap(value, Ordering::SeqCst)
    }

    fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.copies.update();
        self.value.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

impl fmt::Debug for CountingBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountingBool({})", self.value.load(Ordering::SeqCst))
    }
}

/// [`Counting`]'s word: an `AtomicU64` plus its cached-copy set.
/// Ordering arguments are ignored (see [`Counting`]).
pub struct CountingWord {
    value: AtomicU64,
    copies: CopySet,
}

impl SharedWord for CountingWord {
    fn new(value: u64) -> Self {
        Self { value: AtomicU64::new(value), copies: CopySet::new() }
    }

    fn load(&self, _order: Ordering) -> u64 {
        self.copies.read();
        self.value.load(Ordering::SeqCst)
    }

    fn store(&self, value: u64, _order: Ordering) {
        self.copies.update();
        self.value.store(value, Ordering::SeqCst);
    }

    fn swap(&self, value: u64, _order: Ordering) -> u64 {
        self.copies.update();
        self.value.swap(value, Ordering::SeqCst)
    }

    fn fetch_add(&self, delta: u64, _order: Ordering) -> u64 {
        self.copies.update();
        self.value.fetch_add(delta, Ordering::SeqCst)
    }

    fn fetch_sub(&self, delta: u64, _order: Ordering) -> u64 {
        self.copies.update();
        self.value.fetch_sub(delta, Ordering::SeqCst)
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        self.copies.update();
        self.value.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

impl fmt::Debug for CountingWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountingWord({})", self.value.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Ordering::{Acquire, Relaxed, Release, SeqCst};

    /// Runs `f` with a clean slot/tally and returns the tally it produced.
    /// Serialized via the harness's per-test threads: each test body runs
    /// on its own thread, so thread-local state never crosses tests.
    fn tally_of(slot: usize, f: impl FnOnce()) -> Tally {
        set_thread_slot(slot);
        reset_thread_tally();
        f();
        thread_tally()
    }

    #[test]
    fn native_wrappers_are_transparent() {
        use std::mem::{align_of, size_of};
        assert_eq!(size_of::<NativeBool>(), size_of::<AtomicBool>());
        assert_eq!(align_of::<NativeBool>(), align_of::<AtomicBool>());
        assert_eq!(size_of::<NativeWord>(), size_of::<AtomicU64>());
        assert_eq!(align_of::<NativeWord>(), align_of::<AtomicU64>());
        assert_eq!(size_of::<SeqCstBool>(), size_of::<AtomicBool>());
        assert_eq!(size_of::<SeqCstWord>(), size_of::<AtomicU64>());
    }

    #[test]
    fn native_semantics_round_trip() {
        let b = NativeBool::new(false);
        assert!(!b.swap(true, Acquire));
        assert!(b.load(Relaxed));
        assert_eq!(b.compare_exchange(true, false, SeqCst, Relaxed), Ok(true));
        assert_eq!(b.compare_exchange(true, false, Relaxed, Relaxed), Err(false));

        let w = NativeWord::new(5);
        assert_eq!(w.fetch_add(2, Relaxed), 5);
        assert_eq!(w.fetch_sub(1, SeqCst), 7);
        assert_eq!(w.swap(0, Ordering::AcqRel), 6);
        w.store(9, Release);
        assert_eq!(w.compare_exchange(9, 10, Ordering::AcqRel, Acquire), Ok(9));
        assert_eq!(w.load(Acquire), 10);
    }

    #[test]
    fn seqcst_backend_matches_native_semantics() {
        // Same results for the same single-threaded op sequence whatever
        // the (ignored) annotations — the strengthened backend differs
        // only in fencing, never in values.
        let n = NativeWord::new(1);
        let s = SeqCstWord::new(1);
        assert_eq!(n.fetch_add(3, Relaxed), s.fetch_add(3, Relaxed));
        assert_eq!(n.swap(7, Release), s.swap(7, Release));
        assert_eq!(
            n.compare_exchange(7, 9, Acquire, Relaxed),
            s.compare_exchange(7, 9, Acquire, Relaxed)
        );
        assert_eq!(n.load(Relaxed), s.load(Relaxed));
        let nb = NativeBool::new(false);
        let sb = SeqCstBool::new(false);
        assert_eq!(nb.swap(true, Relaxed), sb.swap(true, Relaxed));
        assert_eq!(nb.load(Acquire), sb.load(Acquire));
    }

    #[test]
    fn fences_execute() {
        Native::fence(SeqCst);
        Native::fence(Acquire);
        Native::fence(Release);
        SeqCstNative::fence(Acquire);
        Counting::fence(SeqCst);
    }

    #[test]
    #[should_panic]
    fn relaxed_fence_panics() {
        Native::fence(Relaxed);
    }

    #[test]
    #[should_panic]
    fn seqcst_backend_relaxed_fence_panics() {
        SeqCstNative::fence(Relaxed);
    }

    #[test]
    fn counting_cold_read_then_cached_reads() {
        let w = CountingWord::new(0);
        let t = tally_of(1, || {
            let _ = w.load(SeqCst); // cold miss
            let _ = w.load(Acquire); // cached — annotation changes nothing
            let _ = w.load(Relaxed); // cached
        });
        assert_eq!(t, Tally { cc: 1, dsm: 3, ops: 3 });
    }

    #[test]
    fn counting_update_invalidates_other_holders() {
        let w = CountingWord::new(0);
        let _ = tally_of(1, || {
            let _ = w.load(SeqCst);
        });
        // Slot 2 updates: invalidates slot 1's copy; slot 2 becomes sole
        // holder so its next update is free.
        let t2 = tally_of(2, || {
            w.fetch_add(1, Relaxed);
            w.fetch_add(1, SeqCst);
        });
        assert_eq!((t2.cc, t2.ops), (1, 2));
        // Slot 1 must re-fetch.
        let t1 = tally_of(1, || {
            let _ = w.load(SeqCst);
        });
        assert_eq!(t1.cc, 1);
    }

    #[test]
    fn counting_failed_cas_still_charges() {
        let w = CountingWord::new(7);
        let _ = tally_of(1, || {
            let _ = w.load(SeqCst);
        });
        let t = tally_of(2, || {
            assert!(w.compare_exchange(99, 0, SeqCst, Relaxed).is_err());
        });
        assert_eq!(t.cc, 1, "a failed CAS still performs the coherence transaction");
        // ... and it invalidated slot 1's copy, like the sim's model.
        let t1 = tally_of(1, || {
            let _ = w.load(SeqCst);
        });
        assert_eq!(t1.cc, 1);
    }

    #[test]
    fn counting_dsm_home_is_slot_zero() {
        let b = CountingBool::new(false);
        let home = tally_of(DSM_HOME, || {
            b.store(true, Release);
            let _ = b.load(Acquire);
        });
        assert_eq!(home.dsm, 0, "home accesses are DSM-free");
        let away = tally_of(3, || {
            let _ = b.load(SeqCst);
            let _ = b.load(SeqCst); // every remote poll is charged
        });
        assert_eq!(away.dsm, 2);
    }

    #[test]
    fn counting_bool_semantics_match_native() {
        let b = CountingBool::new(true);
        assert!(b.load(SeqCst));
        assert!(b.swap(false, SeqCst));
        assert_eq!(b.compare_exchange(false, true, SeqCst, SeqCst), Ok(false));
        assert_eq!(b.compare_exchange(false, true, SeqCst, SeqCst), Err(true));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_out_of_range_panics() {
        set_thread_slot(MAX_SLOTS);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Native::NAME, "native");
        assert_eq!(Counting::NAME, "counting");
        assert_eq!(SeqCstNative::NAME, "seqcst");
    }
}
