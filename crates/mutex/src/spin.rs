//! Busy-wait helper used by every spin loop in the workspace — and the
//! *park-point hook* that lets a caller observe (or soften) those loops.
//!
//! Every `wait till <shared variable>` statement in the lock
//! implementations goes through [`spin_until`]/[`SpinWait`], which makes
//! this module the single seam at which all futile-spin points surface.
//! [`with_park_hint`] exploits that: while a hint is installed on the
//! calling thread, every futile iteration invokes the hint instead of the
//! default relax/yield policy. `rmr-async` uses it so a *blocking* writer
//! acquisition running near an executor (the deprecated `write_blocking`,
//! still the writer endpoint for raw locks without a `RawParkedWaiters`
//! doorway) yields its core from the first futile iteration rather than
//! burning 64 hot spins per round.

use std::cell::Cell;
use std::fmt;

/// How many pure `spin_loop` hints to issue before starting to yield to the
/// scheduler. Low enough that single-core hosts (like CI machines) make
/// progress quickly, high enough that multi-core hosts rarely yield.
const SPINS_BEFORE_YIELD: u32 = 64;

thread_local! {
    /// The calling thread's installed park hint, if any. A plain `fn`
    /// pointer (not a closure) keeps the cell `Copy` and the per-futile-
    /// iteration check to one thread-local load.
    static PARK_HINT: Cell<Option<fn()>> = const { Cell::new(None) };

    /// Futile spin iterations this thread has ever burned — the
    /// observability seam: an instrumented acquire samples this before
    /// and after, and the delta is its spin count (zero ⇒ uncontended).
    /// Bumped only on the futile path, so the uncontended fast path
    /// (which never spins) is untouched.
    static SPIN_TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Total futile spin iterations performed by the calling thread (every
/// [`SpinWait::spin`] step, hence every futile pass of a `wait till`
/// loop). Monotone per thread; sample before and after an acquisition
/// and subtract. Used by `rmr-obs`-instrumented tiers to classify
/// contended vs. uncontended passages and to tally spin counts.
pub fn thread_spin_tally() -> u64 {
    SPIN_TALLY.try_with(Cell::get).unwrap_or(0)
}

/// Runs `f` with `hint` installed as the calling thread's park hint:
/// every futile spin iteration inside `f` (any [`SpinWait::spin`], hence
/// any [`spin_until`] and every core lock's `wait till` loop) calls
/// `hint()` instead of the default relax-then-yield policy. The previous
/// hint is restored on exit, including on unwind — hints nest.
///
/// # Example
///
/// ```
/// use rmr_mutex::spin::{spin_until, with_park_hint};
///
/// let mut polls = 0;
/// with_park_hint(std::thread::yield_now, || {
///     spin_until(|| {
///         polls += 1;
///         polls == 3 // two futile iterations, each yielding immediately
///     });
/// });
/// assert_eq!(polls, 3);
/// ```
pub fn with_park_hint<R>(hint: fn(), f: impl FnOnce() -> R) -> R {
    struct Restore(Option<fn()>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            let _ = PARK_HINT.try_with(|h| h.set(prev));
        }
    }
    let prev = PARK_HINT.with(|h| h.replace(Some(hint)));
    let _restore = Restore(prev);
    f()
}

/// An adaptive busy-wait: spins with CPU relax hints first, then yields the
/// thread so the algorithms remain live on machines with fewer cores than
/// contending threads.
///
/// The RMR-complexity claims of the paper concern the number of *remote
/// memory references*, not the number of loop iterations; local re-reads of
/// a cached spin variable are free in the CC model. `SpinWait` only controls
/// how those free local iterations are spent.
///
/// # Example
///
/// ```
/// use rmr_mutex::SpinWait;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let mut spin = SpinWait::new();
/// while !flag.load(Ordering::SeqCst) {
///     spin.spin();
/// }
/// ```
#[derive(Default)]
pub struct SpinWait {
    count: u32,
}

impl SpinWait {
    /// Creates a fresh backoff state.
    pub fn new() -> Self {
        Self { count: 0 }
    }

    /// Performs one wait step: the thread's installed
    /// [park hint](with_park_hint) if there is one, else a CPU relax hint
    /// early on and a scheduler yield once the loop has been running for a
    /// while. (`try_with`: during thread teardown the hint cell may be
    /// gone; fall back to the default policy rather than panic.)
    pub fn spin(&mut self) {
        let _ = SPIN_TALLY.try_with(|t| t.set(t.get() + 1));
        if let Some(hint) = PARK_HINT.try_with(Cell::get).ok().flatten() {
            hint();
        } else if self.count < SPINS_BEFORE_YIELD {
            self.count += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets the state so the next wait starts with relax hints again.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Number of wait steps taken since construction or the last reset.
    pub fn count(&self) -> u32 {
        self.count
    }
}

impl fmt::Debug for SpinWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpinWait").field("count", &self.count).finish()
    }
}

/// Spins until `cond` returns true, yielding as needed.
///
/// Shorthand used throughout the lock implementations for the paper's
/// `wait till <shared variable>` statements.
///
/// # Example
///
/// ```
/// let mut n = 0;
/// rmr_mutex::spin_until(|| { n += 1; n == 3 });
/// assert_eq!(n, 3);
/// ```
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut spin = SpinWait::new();
    while !cond() {
        spin.spin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_counts_then_saturates_into_yields() {
        let mut s = SpinWait::new();
        for _ in 0..SPINS_BEFORE_YIELD {
            s.spin();
        }
        assert_eq!(s.count(), SPINS_BEFORE_YIELD);
        // Further spins yield; the counter stays put rather than overflowing.
        s.spin();
        assert_eq!(s.count(), SPINS_BEFORE_YIELD);
    }

    #[test]
    fn reset_restarts_the_hint_phase() {
        let mut s = SpinWait::new();
        s.spin();
        s.spin();
        assert_eq!(s.count(), 2);
        s.reset();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn spin_until_observes_condition() {
        let mut n = 0;
        spin_until(|| {
            n += 1;
            n == 10
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn park_hint_replaces_the_wait_policy() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static HINTS: AtomicU32 = AtomicU32::new(0);
        fn count_hint() {
            HINTS.fetch_add(1, Ordering::SeqCst);
        }
        HINTS.store(0, Ordering::SeqCst);
        let mut s = SpinWait::new();
        with_park_hint(count_hint, || {
            s.spin();
            s.spin();
        });
        assert_eq!(HINTS.load(Ordering::SeqCst), 2);
        assert_eq!(s.count(), 0, "hinted waits must not consume the relax-phase budget");
        // Restored: spins count again outside the scope.
        s.spin();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn spin_tally_counts_every_futile_iteration() {
        let before = thread_spin_tally();
        let mut s = SpinWait::new();
        s.spin();
        s.spin();
        assert_eq!(thread_spin_tally() - before, 2);
        let before = thread_spin_tally();
        let mut n = 0;
        spin_until(|| {
            n += 1;
            n == 4 // three futile iterations
        });
        assert_eq!(thread_spin_tally() - before, 3);
    }

    #[test]
    fn park_hints_nest_and_restore() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static OUTER: AtomicU32 = AtomicU32::new(0);
        static INNER: AtomicU32 = AtomicU32::new(0);
        fn outer_hint() {
            OUTER.fetch_add(1, Ordering::SeqCst);
        }
        fn inner_hint() {
            INNER.fetch_add(1, Ordering::SeqCst);
        }
        OUTER.store(0, Ordering::SeqCst);
        INNER.store(0, Ordering::SeqCst);
        let mut s = SpinWait::new();
        with_park_hint(outer_hint, || {
            s.spin();
            with_park_hint(inner_hint, || s.spin());
            s.spin(); // outer hint restored
        });
        assert_eq!((OUTER.load(Ordering::SeqCst), INNER.load(Ordering::SeqCst)), (2, 1));
    }
}
