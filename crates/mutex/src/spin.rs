//! Busy-wait helper used by every spin loop in the workspace.

use std::fmt;

/// How many pure `spin_loop` hints to issue before starting to yield to the
/// scheduler. Low enough that single-core hosts (like CI machines) make
/// progress quickly, high enough that multi-core hosts rarely yield.
const SPINS_BEFORE_YIELD: u32 = 64;

/// An adaptive busy-wait: spins with CPU relax hints first, then yields the
/// thread so the algorithms remain live on machines with fewer cores than
/// contending threads.
///
/// The RMR-complexity claims of the paper concern the number of *remote
/// memory references*, not the number of loop iterations; local re-reads of
/// a cached spin variable are free in the CC model. `SpinWait` only controls
/// how those free local iterations are spent.
///
/// # Example
///
/// ```
/// use rmr_mutex::SpinWait;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let mut spin = SpinWait::new();
/// while !flag.load(Ordering::SeqCst) {
///     spin.spin();
/// }
/// ```
#[derive(Default)]
pub struct SpinWait {
    count: u32,
}

impl SpinWait {
    /// Creates a fresh backoff state.
    pub fn new() -> Self {
        Self { count: 0 }
    }

    /// Performs one wait step: a CPU relax hint early on, a scheduler yield
    /// once the loop has been running for a while.
    pub fn spin(&mut self) {
        if self.count < SPINS_BEFORE_YIELD {
            self.count += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets the state so the next wait starts with relax hints again.
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Number of wait steps taken since construction or the last reset.
    pub fn count(&self) -> u32 {
        self.count
    }
}

impl fmt::Debug for SpinWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpinWait").field("count", &self.count).finish()
    }
}

/// Spins until `cond` returns true, yielding as needed.
///
/// Shorthand used throughout the lock implementations for the paper's
/// `wait till <shared variable>` statements.
///
/// # Example
///
/// ```
/// let mut n = 0;
/// rmr_mutex::spin_until(|| { n += 1; n == 3 });
/// assert_eq!(n, 3);
/// ```
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut spin = SpinWait::new();
    while !cond() {
        spin.spin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_counts_then_saturates_into_yields() {
        let mut s = SpinWait::new();
        for _ in 0..SPINS_BEFORE_YIELD {
            s.spin();
        }
        assert_eq!(s.count(), SPINS_BEFORE_YIELD);
        // Further spins yield; the counter stays put rather than overflowing.
        s.spin();
        assert_eq!(s.count(), SPINS_BEFORE_YIELD);
    }

    #[test]
    fn reset_restarts_the_hint_phase() {
        let mut s = SpinWait::new();
        s.spin();
        s.spin();
        assert_eq!(s.count(), 2);
        s.reset();
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn spin_until_observes_condition() {
        let mut n = 0;
        spin_until(|| {
            n += 1;
            n == 10
        });
        assert_eq!(n, 10);
    }
}
