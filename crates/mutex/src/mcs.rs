//! Mellor-Crummey & Scott queue lock (ACM TOCS 1991).

use crate::mem::{Backend, Native, Ordering, SharedBool, SharedWord};
use crate::spin::spin_until;
use crate::RawMutex;
use std::fmt;

/// One queue node per in-flight acquisition, heap allocated and owned by the
/// acquiring thread until its `unlock` hands the lock to the successor.
struct Node<B: Backend> {
    /// `true` while the owner of this node must keep waiting.
    locked: B::Bool,
    /// The successor's node pointer (encoded), written exactly once by the
    /// successor after it swaps itself in; 0 = none yet.
    next: B::Word,
}

/// Encodes a node pointer into the backend's shared word (0 = null). Shared
/// words are 64-bit and `usize` never exceeds 64 bits, so the round trip is
/// lossless.
fn encode<B: Backend>(node: *mut Node<B>) -> u64 {
    node as usize as u64
}

fn decode<B: Backend>(raw: u64) -> *mut Node<B> {
    raw as usize as *mut Node<B>
}

/// The Mellor-Crummey & Scott list-based queue lock: O(1) RMR on both CC and
/// DSM machines, FCFS, starvation free (this is the algorithm the paper's
/// introduction credits with the Dijkstra-prize-winning constant-RMR mutual
/// exclusion result).
///
/// Provided as a second constant-RMR mutex besides [`crate::AndersonLock`];
/// `rmr-core`'s multi-writer constructions are generic over [`RawMutex`], so
/// the test suite cross-checks both substrates.
///
/// Generic over the memory backend `B` ([`Native`] by default). The queue
/// link (`tail`, `next`) is a pointer stored in the backend's shared word,
/// so pointer swaps and the handoff CAS are RMR-accounted like every other
/// shared access under [`crate::Counting`].
///
/// # Example
///
/// ```
/// use rmr_mutex::{McsLock, RawMutex};
///
/// let lock = McsLock::new();
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
pub struct McsLock<B: Backend = Native> {
    /// Encoded `*mut Node<B>` of the most recent arrival; 0 = free.
    tail: B::Word,
}

/// Proof of ownership for [`McsLock`]: the holder's queue node.
pub struct McsToken<B: Backend = Native> {
    node: *mut Node<B>,
}

impl<B: Backend> fmt::Debug for McsToken<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsToken").field("node", &self.node).finish()
    }
}

impl McsLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self::new_in(Native)
    }
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: Backend> McsLock<B> {
    /// Creates an unlocked lock over the given memory backend.
    pub fn new_in(_backend: B) -> Self {
        Self { tail: B::Word::new(0) }
    }

    /// True if no thread holds or waits for the lock. Diagnostic only.
    pub fn is_free_hint(&self) -> bool {
        // Diagnostic snapshot only; no synchronization rides on it.
        self.tail.load(Ordering::Relaxed) == 0
    }
}

impl<B: Backend> RawMutex for McsLock<B> {
    type Token = McsToken<B>;

    fn lock(&self) -> McsToken<B> {
        let node: *mut Node<B> =
            Box::into_raw(Box::new(Node { locked: B::Bool::new(true), next: B::Word::new(0) }));
        // AcqRel: the release side publishes our freshly initialized node
        // to whoever reads the tail next (a successor's swap or the
        // holder's unlock CAS); the acquire side, on an uncontended
        // acquisition (pred == null), synchronizes with the previous
        // holder's releasing tail CAS so its CS writes are visible.
        let pred = decode::<B>(self.tail.swap(encode(node), Ordering::AcqRel));
        if !pred.is_null() {
            // SAFETY: `pred` is freed by its owner only after it has either
            // (a) won the tail CAS in unlock — impossible once we replaced it
            // as tail — or (b) observed and woken its successor, which
            // requires this store to have happened first.
            // Release: the predecessor's Acquire load of `next` must see
            // our node fully initialized before it writes `locked`.
            unsafe { (*pred).next.store(encode(node), Ordering::Release) };
            // SAFETY: we own `node` until unlock; only the predecessor writes
            // `locked`, exactly once.
            // Acquire: pairs with the predecessor's Release handoff store,
            // making its CS writes visible before we enter.
            spin_until(|| !unsafe { (*node).locked.load(Ordering::Acquire) });
        }
        McsToken { node }
    }

    fn unlock(&self, token: McsToken<B>) {
        let node = token.node;
        // SAFETY: `node` came from the matching `lock` and is still owned by
        // the caller; nobody frees it but us.
        unsafe {
            // Acquire: a non-null read must also see the successor's node
            // initialization (paired with its Release link store) before
            // we dereference it below.
            let mut next = decode::<B>((*node).next.load(Ordering::Acquire));
            if next.is_null() {
                // No visible successor: try to swing the tail back to empty.
                // Release on success: the next acquirer's AcqRel tail swap
                // reads 0 from this CAS and must see our CS writes.
                // Relaxed on failure: it only tells us a successor is
                // mid-enqueue; the Acquire spin below synchronizes with it.
                if self
                    .tail
                    .compare_exchange(encode(node), 0, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                // A successor is mid-enqueue; wait for it to link itself.
                spin_until(|| {
                    next = decode::<B>((*node).next.load(Ordering::Acquire));
                    !next.is_null()
                });
            }
            // Release: hands our CS writes to the successor's Acquire spin.
            (*next).locked.store(false, Ordering::Release);
            drop(Box::from_raw(node));
        }
    }
}

impl<B: Backend> Drop for McsLock<B> {
    fn drop(&mut self) {
        // A leaked token leaks its node; a held lock at drop time is a
        // caller bug. Nothing to free on the happy path: every node is
        // reclaimed by its own unlock.
        debug_assert!(
            self.tail.load(Ordering::Relaxed) == 0,
            "McsLock dropped while held or contended"
        );
    }
}

impl<B: Backend> fmt::Debug for McsLock<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsLock").field("free", &self.is_free_hint()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusion_stress;

    #[test]
    fn uncontended_cycles_leave_lock_free() {
        let lock = McsLock::new();
        for _ in 0..1000 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert!(lock.is_free_hint());
    }

    #[test]
    fn exclusion_under_contention() {
        exclusion_stress(McsLock::new(), 8, 200);
    }

    #[test]
    fn counting_backend_cycles() {
        let lock = McsLock::new_in(crate::Counting);
        for _ in 0..100 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert!(lock.is_free_hint());
    }

    #[test]
    fn sequential_handoff_pairs() {
        // Acquire twice from two threads with explicit sequencing to cover
        // the successor-linking path deterministically-ish.
        use std::sync::Arc;
        let lock = Arc::new(McsLock::new());
        let l2 = Arc::clone(&lock);
        let t = lock.lock();
        let h = std::thread::spawn(move || {
            let t2 = l2.lock();
            l2.unlock(t2);
        });
        // Give the second thread a chance to enqueue behind us.
        std::thread::sleep(std::time::Duration::from_millis(10));
        lock.unlock(t);
        h.join().unwrap();
        assert!(lock.is_free_hint());
    }
}
