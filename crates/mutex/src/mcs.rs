//! Mellor-Crummey & Scott queue lock (ACM TOCS 1991).

use crate::spin::spin_until;
use crate::RawMutex;
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// One queue node per in-flight acquisition, heap allocated and owned by the
/// acquiring thread until its `unlock` hands the lock to the successor.
struct Node {
    /// `true` while the owner of this node must keep waiting.
    locked: AtomicBool,
    /// Written (exactly once) by the successor after it swaps itself in.
    next: AtomicPtr<Node>,
}

/// The Mellor-Crummey & Scott list-based queue lock: O(1) RMR on both CC and
/// DSM machines, FCFS, starvation free (this is the algorithm the paper's
/// introduction credits with the Dijkstra-prize-winning constant-RMR mutual
/// exclusion result).
///
/// Provided as a second constant-RMR mutex besides [`crate::AndersonLock`];
/// `rmr-core`'s multi-writer constructions are generic over [`RawMutex`], so
/// the test suite cross-checks both substrates.
///
/// # Example
///
/// ```
/// use rmr_mutex::{McsLock, RawMutex};
///
/// let lock = McsLock::new();
/// let t = lock.lock();
/// lock.unlock(t);
/// ```
#[derive(Default)]
pub struct McsLock {
    tail: AtomicPtr<Node>,
}

/// Proof of ownership for [`McsLock`]: the holder's queue node.
pub struct McsToken {
    node: *mut Node,
}

impl fmt::Debug for McsToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsToken").field("node", &self.node).finish()
    }
}

impl McsLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        Self { tail: AtomicPtr::new(ptr::null_mut()) }
    }

    /// True if no thread holds or waits for the lock. Diagnostic only.
    pub fn is_free_hint(&self) -> bool {
        self.tail.load(Ordering::SeqCst).is_null()
    }
}

impl RawMutex for McsLock {
    type Token = McsToken;

    fn lock(&self) -> McsToken {
        let node = Box::into_raw(Box::new(Node {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        let pred = self.tail.swap(node, Ordering::SeqCst);
        if !pred.is_null() {
            // SAFETY: `pred` is freed by its owner only after it has either
            // (a) won the tail CAS in unlock — impossible once we replaced it
            // as tail — or (b) observed and woken its successor, which
            // requires this store to have happened first.
            unsafe { (*pred).next.store(node, Ordering::SeqCst) };
            // SAFETY: we own `node` until unlock; only the predecessor writes
            // `locked`, exactly once.
            spin_until(|| !unsafe { (*node).locked.load(Ordering::SeqCst) });
        }
        McsToken { node }
    }

    fn unlock(&self, token: McsToken) {
        let node = token.node;
        // SAFETY: `node` came from the matching `lock` and is still owned by
        // the caller; nobody frees it but us.
        unsafe {
            let mut next = (*node).next.load(Ordering::SeqCst);
            if next.is_null() {
                // No visible successor: try to swing the tail back to empty.
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                // A successor is mid-enqueue; wait for it to link itself.
                spin_until(|| {
                    next = (*node).next.load(Ordering::SeqCst);
                    !next.is_null()
                });
            }
            (*next).locked.store(false, Ordering::SeqCst);
            drop(Box::from_raw(node));
        }
    }
}

impl Drop for McsLock {
    fn drop(&mut self) {
        // A leaked token leaks its node; a held lock at drop time is a
        // caller bug. Nothing to free on the happy path: every node is
        // reclaimed by its own unlock.
        debug_assert!(self.tail.get_mut().is_null(), "McsLock dropped while held or contended");
    }
}

impl fmt::Debug for McsLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McsLock").field("free", &self.is_free_hint()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::exclusion_stress;

    #[test]
    fn uncontended_cycles_leave_lock_free() {
        let lock = McsLock::new();
        for _ in 0..1000 {
            let t = lock.lock();
            lock.unlock(t);
        }
        assert!(lock.is_free_hint());
    }

    #[test]
    fn exclusion_under_contention() {
        exclusion_stress(McsLock::new(), 8, 200);
    }

    #[test]
    fn sequential_handoff_pairs() {
        // Acquire twice from two threads with explicit sequencing to cover
        // the successor-linking path deterministically-ish.
        use std::sync::Arc;
        let lock = Arc::new(McsLock::new());
        let l2 = Arc::clone(&lock);
        let t = lock.lock();
        let h = std::thread::spawn(move || {
            let t2 = l2.lock();
            l2.unlock(t2);
        });
        // Give the second thread a chance to enqueue behind us.
        std::thread::sleep(std::time::Duration::from_millis(10));
        lock.unlock(t);
        h.join().unwrap();
        assert!(lock.is_free_hint());
    }
}
