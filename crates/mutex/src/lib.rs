//! Mutual-exclusion substrate for the constant-RMR reader-writer locks.
//!
//! The centerpiece is [`AndersonLock`], T. E. Anderson's array-based queueing
//! lock (*"The performance of spin lock alternatives for shared-memory
//! multiprocessors"*, IEEE TPDS 1990). It is the lock `M` that Figure 3 and
//! Figure 4 of Bhatt & Jayanti (PODC 2010) wrap around the single-writer
//! algorithms, chosen because it provides, with O(1) RMR complexity on
//! cache-coherent machines:
//!
//! * mutual exclusion,
//! * starvation freedom and first-come-first-served ordering,
//! * bounded exit, and
//! * the *waiting-room enabledness* property required by WP2: if a set `S`
//!   of processes is in the waiting room and no process is in the critical
//!   or exit section, some process in `S` is enabled to enter.
//!
//! The crate also ships the classic spin locks ([`TasLock`], [`TtasLock`],
//! [`TicketLock`], [`McsLock`]) used as baselines and as sanity checks for
//! the RMR-accounting model in `rmr-sim`.
//!
//! # Memory ordering
//!
//! The algorithms in this workspace are transcribed from papers that assume
//! sequential consistency, but each atomic access now carries the **weakest
//! [`Ordering`](mem::Ordering) its proof obligation permits**, annotated
//! and justified at the call site (DESIGN.md §13). Cross-variable
//! store-then-load patterns that the proofs genuinely rely on (the paper
//! locks' announce-then-scan passages, Bravo's publish/re-check, the swap
//! tier's epoch publication) remain `SeqCst`; lock handoffs are
//! Release/Acquire pairs; ticket draws and diagnostics are `Relaxed`. The
//! policy is *verified, not trusted*: the [`sched`] backend's
//! [`StoreBuffer`](sched::MemoryModel::StoreBuffer) mode model-checks the
//! shipped code under store reordering, and `rmr-check`'s `WrongOrdering`
//! mutants prove each relaxation class would be caught if demoted too far.
//!
//! # Memory backends
//!
//! Every lock here (and in `rmr-core`/`rmr-baselines`) is generic over a
//! [`mem::Backend`] — [`Native`] by default (transparent `std` atomics,
//! zero cost), [`Counting`], which tallies remote memory references
//! under the paper's CC and DSM cost models *on the real implementations*
//! (experiment E13), or [`Sched`], which routes every operation through a
//! deterministic cooperative scheduler so the `rmr-check` crate can
//! model-check the shipped lock code schedule by schedule (experiment
//! E14). See [`mem`] for the model definitions and [`sched`] for the
//! execution model.
//!
//! # Example
//!
//! ```
//! use rmr_mutex::{AndersonLock, RawMutex};
//! use std::sync::Arc;
//!
//! let lock = Arc::new(AndersonLock::new(8));
//! let mut handles = Vec::new();
//! for _ in 0..4 {
//!     let lock = Arc::clone(&lock);
//!     handles.push(std::thread::spawn(move || {
//!         let token = lock.lock();
//!         // ... critical section ...
//!         lock.unlock(token);
//!     }));
//! }
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anderson;
mod mcs;
pub mod mem;
mod pad;
pub mod sched;
pub mod spin;
mod tas;
mod ticket;

pub use anderson::{AndersonLock, AndersonToken};
pub use mcs::{McsLock, McsToken};
pub use mem::{Backend, Counting, Native};
pub use pad::CachePadded;
pub use sched::Sched;
pub use spin::{spin_until, SpinWait};
pub use tas::{TasLock, TtasLock};
pub use ticket::{TicketLock, TicketToken};

/// A raw mutual-exclusion lock.
///
/// `lock` returns an opaque token that must be passed back to `unlock`;
/// queue-based locks (Anderson, MCS) use it to remember the waiter's slot or
/// queue node. The token is intentionally *not* an RAII guard: the
/// reader-writer constructions in `rmr-core` need to interleave `lock`,
/// algorithm-specific steps, and `unlock` at precise program points.
///
/// # Example
///
/// ```
/// use rmr_mutex::{RawMutex, TicketLock};
///
/// let lock = TicketLock::new();
/// let token = lock.lock();
/// lock.unlock(token);
/// ```
pub trait RawMutex: Send + Sync {
    /// Proof of lock ownership, returned by [`RawMutex::lock`].
    type Token;

    /// Acquires the lock, blocking (spinning) until it is held.
    fn lock(&self) -> Self::Token;

    /// Releases the lock.
    ///
    /// The token must come from the matching [`RawMutex::lock`] call on the
    /// same lock; implementations may panic or misbehave otherwise.
    fn unlock(&self, token: Self::Token);

    /// Maximum number of *concurrent* contenders supported, if bounded.
    ///
    /// `None` means unbounded. Exceeding a bounded capacity is a contract
    /// violation (Anderson's array lock would wrap into a live waiter's
    /// slot).
    fn capacity(&self) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Generic mutual-exclusion stress test shared by all lock types.
    pub(crate) fn exclusion_stress<L>(lock: L, threads: usize, iters: usize)
    where
        L: RawMutex + 'static,
    {
        let lock = Arc::new(lock);
        let in_cs = Arc::new(AtomicUsize::new(0));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let lock = Arc::clone(&lock);
            let in_cs = Arc::clone(&in_cs);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    let token = lock.lock();
                    let now = in_cs.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(now, 0, "mutual exclusion violated");
                    total.fetch_add(1, Ordering::SeqCst);
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    lock.unlock(token);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), threads * iters);
    }

    #[test]
    fn all_locks_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AndersonLock>();
        assert_send_sync::<TasLock>();
        assert_send_sync::<TtasLock>();
        assert_send_sync::<TicketLock>();
        assert_send_sync::<McsLock>();
    }
}
