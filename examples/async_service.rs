//! A toy lookup service on the async tier: worker "request handlers"
//! `await` a shared read-mostly table instead of spinning on it.
//!
//! Each worker thread runs one executor (`block_on`) processing a stream
//! of requests — mostly GETs (`read().await`), a few PUTs
//! (`write().await`). The lock is the paper's Figure 1
//! (`SwmrWriterPriority`) behind `AsyncRwLock`: a core SWMR lock serving
//! a cancellation-safe awaited writer, which is exactly what the
//! `RawParkedWaiters` doorway redesign bought (DESIGN.md §15) — before
//! it, these locks only offered `write_blocking` from a dedicated writer
//! thread, and an awaiting writer had no queue presence for the
//! writer-priority policy to protect. Any worker may PUT: the doorway
//! claim word serializes the writer role across tasks, so the
//! single-writer protocol sees one writer at a time even though no
//! single thread owns the role. A shared `rmr-obs` `StatsRecorder`
//! carries the service's bookkeeping — `UserHit`/`UserPut` replace
//! per-worker counter plumbing — and, because the same recorder is
//! attached to the lock, the park/wake traffic and the writer's
//! wake-to-grant tail come out of the identical object.
//!
//! ```text
//! cargo run --release --example async_service
//! ```

use rmrw::async_lock::exec::block_on;
use rmrw::async_lock::AsyncRwLock;
use rmrw::core::swmr::SwmrWriterPriority;
use rmrw::obs::{Event, Metric, Recorder, StatsRecorder};
use rmrw::sim::rng::SplitMix64;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: usize = 50_000;
const KEYS: u64 = 1024;
/// One request in 64 is a PUT; the rest are GETs.
const PUT_ONE_IN: u64 = 64;

fn main() {
    let rec = Arc::new(StatsRecorder::new(WORKERS));
    let table: HashMap<u64, u64> = (0..KEYS / 2).map(|k| (k, k * k)).collect();
    let service = Arc::new(
        AsyncRwLock::with_raw_and_capacity(table, SwmrWriterPriority::new(), WORKERS)
            .with_recorder(Arc::clone(&rec)),
    );

    let t0 = Instant::now();
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let service = Arc::clone(&service);
        let rec = Arc::clone(&rec);
        workers.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0xA51_0000 ^ w as u64);
            block_on(async {
                for _ in 0..REQUESTS_PER_WORKER {
                    let key = rng.gen_index(KEYS as usize) as u64;
                    if rng.gen_index(PUT_ONE_IN as usize) == 0 {
                        service.write().await.insert(key, key * key);
                        rec.count(w, Event::UserPut);
                    } else if service.read().await.contains_key(&key) {
                        rec.count(w, Event::UserHit);
                    }
                }
            });
        }));
    }
    for worker in workers {
        worker.join().expect("worker panicked");
    }
    let elapsed = t0.elapsed();

    let hits = rec.counter(Event::UserHit);
    let puts = rec.counter(Event::UserPut);
    let requests = (WORKERS * REQUESTS_PER_WORKER) as u64;
    let gets = requests - puts;
    println!("async_service: {WORKERS} workers × {REQUESTS_PER_WORKER} requests (Fig. 1 lock)");
    println!(
        "  throughput : {:.0} req/s ({requests} requests in {elapsed:.2?})",
        requests as f64 / elapsed.as_secs_f64()
    );
    println!("  mix        : {gets} GETs ({hits} hits), {puts} PUTs");
    println!(
        "  writer     : acquire p99 ≤{} ns over {} awaited writes; wake-to-grant p99 ≤{} ns \
         over {} parked grants",
        rec.quantile(Metric::WriteAcquireNs, 0.99),
        rec.samples(Metric::WriteAcquireNs),
        rec.quantile(Metric::WakeToGrantNs, 0.99),
        rec.samples(Metric::WakeToGrantNs),
    );
    println!(
        "  parking    : {} parks, {} wake-ups delivered; {} readers / {} writers still parked",
        rec.counter(Event::AsyncPark),
        service.wakeups(),
        service.parked_readers(),
        service.parked_writers()
    );

    assert!(service.is_quiescent(), "service must quiesce once the workers are gone");
    assert!(service.raw().is_quiescent(), "the Fig. 1 protocol must drain");
    assert_eq!(
        rec.counter(Event::WriteAcquire),
        puts,
        "every PUT is exactly one write acquisition"
    );
    let size = block_on(async { service.read().await.len() });
    println!("  table size : {size} keys");
}
