//! Watch the paper's §4.3 argument become a concrete interleaving: remove
//! "subtle feature (A)" from Figure 2 (readers stamping their pid into
//! `X`) and ask the model checker for the shortest-found schedule that
//! breaks mutual exclusion.
//!
//! ```text
//! cargo run --release --example counterexample
//! ```

use rmrw::sim::algos::mutants::{Fig2Break, Fig2Mutant};
use rmrw::sim::trace::find_counterexample;

fn main() {
    println!("Searching for a P1 violation in Figure 2 WITHOUT feature (A)...");
    println!("(readers no longer CAS their pid into X in the try section)\n");

    let alg = Fig2Mutant::new(2, Fig2Break::NoFeatureA);
    match find_counterexample(&alg, &[2, 2, 2], 60_000_000) {
        Some(cex) => {
            println!("{cex}");
            println!(
                "This is the schedule class the paper predicts in §4.3: a reader\n\
                 begins its try section while a promoter that already observed\n\
                 C = 0 is poised at line 15; without the pid stamp, the CAS to\n\
                 `true` still succeeds and the writer joins the reader in the CS."
            );
        }
        None => {
            println!("no violation found — this would contradict the paper's §4.3!");
            std::process::exit(1);
        }
    }

    println!("\nFor contrast, the intact Figure 2 over the same bounds:");
    let intact = rmrw::sim::algos::fig2::Fig2::new(2);
    match find_counterexample(&intact, &[2, 2, 2], 60_000_000) {
        None => println!("  clean — no reachable P1 violation (as Theorem 2 proves)."),
        Some(cex) => {
            println!("  UNEXPECTED violation:\n{cex}");
            std::process::exit(1);
        }
    }
}
