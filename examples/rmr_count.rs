//! Measure the paper's headline claim yourself: RMRs per lock attempt
//! under the cache-coherent cost model, as contention grows.
//!
//! Runs the line-level machine encodings from `rmr-sim` and prints a small
//! table comparing Figure 1 (constant) against the 1971 centralized lock
//! (linear). For the full sweep over every algorithm and baseline, run
//! `cargo run --release -p rmr-bench --bin rmr_table`.
//!
//! ```text
//! cargo run --release --example rmr_count
//! ```

use rmrw::sim::algos::{Centralized, Fig1};
use rmrw::sim::cost::CcModel;
use rmrw::sim::machine::Algorithm;
use rmrw::sim::runner::{RandomSched, Runner};

fn max_rmr<A: Algorithm>(alg: A, seed: u64) -> u64 {
    let procs = alg.processes();
    let vars = alg.layout().len();
    let mut runner = Runner::new(alg, CcModel::new(procs.min(64), vars), 3);
    runner.run(&mut RandomSched::new(seed), 10_000_000);
    assert!(runner.violations().is_empty());
    assert!(runner.quiescent());
    runner.finished_attempts().iter().map(|a| a.rmrs).max().unwrap_or(0)
}

fn main() {
    println!("max RMRs per attempt (CC model), averaged over 3 seeds\n");
    println!("| readers | Fig. 1 (Bhatt-Jayanti) | centralized (Courtois 1971) |");
    println!("|---|---|---|");
    for readers in [1usize, 2, 4, 8, 16, 32] {
        let fig1: u64 = (0..3).map(|s| max_rmr(Fig1::new(readers), s)).max().unwrap();
        let cent: u64 = (0..3).map(|s| max_rmr(Centralized::new(1, readers), s)).max().unwrap();
        println!("| {readers} | {fig1} | {cent} |");
    }
    println!("\nThe left column stays flat — that is Theorem 1's O(1) RMR bound.");
    println!("The right column grows with contention — the cost the paper removes.");
}
