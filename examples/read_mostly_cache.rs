//! A sharded read-mostly key-value cache served through
//! `RwLock<_, Bravo<…>>` — the workload the BRAVO wrapper exists for.
//!
//! Each shard is a `HashMap` behind a ticket lock wrapped in `Bravo`:
//! cache hits take the biased reader fast path (zero operations on the
//! inner lock), misses fill the entry under the write lock, which revokes
//! the shard's bias; the deterministic counter policy re-biases the shard
//! once reads dominate again. A small multi-threaded driver runs a
//! Zipf-ish 99%-read mix. All bookkeeping — hits, misses, acquire
//! latency quantiles — lives in one shared `rmr-obs` `StatsRecorder`
//! attached to every shard: the `UserHit`/`UserMiss` counters replace
//! the hand-rolled atomic tallies this example used to carry, and the
//! same recorder's histograms give the read-path p50/p99 for free.
//!
//! ```text
//! cargo run --release --example read_mostly_cache
//! ```

use rmrw::baselines::TicketRwLock;
use rmrw::bravo::{Bravo, BravoConfig};
use rmrw::core::RwLock;
use rmrw::obs::{Event, Metric, Recorder, StatsRecorder};
use rmrw::sim::rng::SplitMix64;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 8;
const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 200_000;
const KEYS: u64 = 4096;

type Shard = RwLock<HashMap<u64, u64>, Bravo<TicketRwLock>, Arc<StatsRecorder>>;

/// The value the cache computes on a miss (stand-in for a slow backend).
fn compute(key: u64) -> u64 {
    key.wrapping_mul(0x9e37_79b9).rotate_left(13)
}

fn shard_of(key: u64) -> usize {
    (key % SHARDS as u64) as usize
}

fn main() {
    let rec = Arc::new(StatsRecorder::new(THREADS + 1));
    let cache: Arc<Vec<Shard>> = Arc::new(
        (0..SHARDS)
            .map(|_| {
                RwLock::with_raw(
                    HashMap::new(),
                    Bravo::with_config(
                        TicketRwLock::new(THREADS + 1),
                        // Small tables: one slot per possible thread is
                        // plenty, and writers scan the whole table on
                        // every revocation.
                        BravoConfig { table_slots: 16, rebias_after: 32, initial_bias: true },
                    ),
                )
                .with_recorder(Arc::clone(&rec))
            })
            .collect(),
    );

    let started = Instant::now();
    let mut threads = Vec::new();
    for t in 0..THREADS {
        let cache = Arc::clone(&cache);
        let rec = Arc::clone(&rec);
        threads.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::new(0xCAC4E ^ (t as u64) << 32);
            for _ in 0..OPS_PER_THREAD {
                // Skewed key popularity: half the traffic on 1/16 of the
                // keyspace, so hot shards go read-only fast.
                let key = if rng.gen_bool(0.5) {
                    rng.next_u64() % (KEYS / 16)
                } else {
                    rng.next_u64() % KEYS
                };
                let shard = &cache[shard_of(key)];
                if let Some(v) = shard.read().get(&key).copied() {
                    assert_eq!(v, compute(key), "cache served a wrong value");
                    rec.count(t, Event::UserHit);
                    continue;
                }
                rec.count(t, Event::UserMiss);
                // Miss: fill under the write lock (revokes the shard's
                // bias; double-check under the lock as another thread may
                // have filled it first).
                shard.write().entry(key).or_insert_with(|| compute(key));
            }
        }));
    }
    for th in threads {
        th.join().unwrap();
    }

    let elapsed = started.elapsed();
    let (h, m) = (rec.counter(Event::UserHit), rec.counter(Event::UserMiss));
    let total = h + m;
    println!(
        "{total} lookups over {SHARDS} shards in {elapsed:?} — {:.1} Mops/s, hit rate {:.2}%",
        total as f64 / elapsed.as_secs_f64() / 1e6,
        100.0 * h as f64 / total as f64,
    );
    println!(
        "read acquire: p50 ≤{} ns, p99 ≤{} ns over {} passages ({} contended)",
        rec.quantile(Metric::ReadAcquireNs, 0.50),
        rec.quantile(Metric::ReadAcquireNs, 0.99),
        rec.counter(Event::ReadAcquire),
        rec.counter(Event::ReadContended),
    );
    assert_eq!(rec.counter(Event::ReadAcquire), rec.counter(Event::ReadRelease));
    for (i, shard) in cache.iter().enumerate() {
        let raw = shard.raw();
        println!(
            "shard {i}: {} keys, bias {}, {} revocations",
            shard.read().len(),
            if raw.bias() { "on " } else { "off" },
            raw.revocations(),
        );
        assert!(raw.is_quiescent(), "shard {i} table did not drain");
    }
}
