//! Configuration hot-reload under the writer-priority lock (Theorem 5):
//! the scenario where stale reads are costly, so a pending update must not
//! be starved by the read storm.
//!
//! Many worker threads consult a shared `Config` on every request; an
//! operator thread occasionally replaces it. With `RwLock::writer_priority`
//! the reload proceeds ahead of all readers that arrived after it (WP1),
//! and the unstoppable-writers property (WP2) bounds its entry once the
//! critical section drains. No thread registers anything — the lock is
//! used exactly like `std::sync::RwLock`.
//!
//! ```text
//! cargo run --release --example config_hot_reload
//! ```

use rmrw::core::rwlock::WriterPriorityRwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
struct Config {
    version: u64,
    rate_limit: u32,
    feature_flags: Vec<(&'static str, bool)>,
}

impl Config {
    fn v(version: u64) -> Self {
        Config {
            version,
            rate_limit: 100 + version as u32,
            feature_flags: vec![("fast_path", version.is_multiple_of(2)), ("tracing", true)],
        }
    }
}

const WORKERS: usize = 3;
const RELOADS: u64 = 40;

fn main() {
    let lock: Arc<WriterPriorityRwLock<Config>> =
        Arc::new(WriterPriorityRwLock::writer_priority(Config::v(0), WORKERS + 1));

    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let torn_reads = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();

    for _ in 0..WORKERS {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let requests = Arc::clone(&requests);
        let torn = Arc::clone(&torn_reads);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let cfg = lock.read();
                // A torn config would have version/rate_limit out of sync.
                if cfg.rate_limit as u64 != 100 + cfg.version {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
                drop(cfg);
                requests.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // The operator performs RELOADS hot reloads and tracks how long each
    // write-lock acquisition took against the storm.
    let mut waits = Vec::with_capacity(RELOADS as usize);
    for version in 1..=RELOADS {
        std::thread::sleep(Duration::from_millis(3));
        let t0 = Instant::now();
        let mut guard = lock.write();
        waits.push(t0.elapsed());
        *guard = Config::v(version);
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let max = waits.iter().max().expect("reloads happened");
    let mean: Duration = waits.iter().sum::<Duration>() / waits.len() as u32;
    println!("config_hot_reload (writer-priority, {WORKERS} workers, {RELOADS} reloads)");
    println!("  requests served : {}", requests.load(Ordering::Relaxed));
    println!("  torn reads      : {}", torn_reads.load(Ordering::Relaxed));
    println!("  reload wait mean: {mean:?}");
    println!("  reload wait max : {max:?}");
    assert_eq!(torn_reads.load(Ordering::Relaxed), 0, "readers saw a torn config");

    assert_eq!(lock.read().version, RELOADS);
    println!("final config version: {RELOADS} (all reloads landed, none starved)");
}
