//! Configuration hot-reload over the epoch-swap snapshot tier: the
//! scenario where reads vastly outnumber reloads, so the read path should
//! pay nothing — `Snapshot::load` is wait-free and performs zero remote
//! memory references in steady state, and a reload never blocks a reader
//! (readers pinning the old version keep it alive until they drop).
//!
//! Many worker threads consult a shared `Config` on every request; an
//! operator thread occasionally replaces it with `Snapshot::store`. The
//! scenario runs once per retirement policy, because the policy is the
//! knob a deployment actually turns:
//!
//! * **eager** — the operator waits out readers still pinning the old
//!   version inside each reload, so at most one retired config is ever
//!   outstanding (bounded memory, reload pays the grace period);
//! * **batched** — reloads return immediately and retired configs age in
//!   a list until the high-water mark triggers a scan (fast reloads, and
//!   `peak retired` shows the memory the deployment traded for them).
//!
//! No thread registers anything — pids are leased behind the scenes, and
//! a worker could even nest a second `load` inside its first (snapshot
//! reads are safely reentrant, unlike lock reads).
//!
//! ```text
//! cargo run --release --example config_hot_reload
//! ```

use rmrw::swap::{RetireBatched, RetireEager, RetirePolicy, Snapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
struct Config {
    version: u64,
    rate_limit: u32,
    feature_flags: Vec<(&'static str, bool)>,
}

impl Config {
    fn v(version: u64) -> Self {
        Config {
            version,
            rate_limit: 100 + version as u32,
            feature_flags: vec![("fast_path", version.is_multiple_of(2)), ("tracing", true)],
        }
    }
}

const WORKERS: usize = 3;
const RELOADS: u64 = 40;

fn run(label: &str, policy: impl RetirePolicy + Copy) {
    let snap: Arc<Snapshot<Config, _, _>> = Arc::new(Snapshot::with_raw_and_capacity(
        Config::v(0),
        rmrw::core::mwmr::MwmrStarvationFree::new(WORKERS + 1),
        policy,
        WORKERS + 1,
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let torn_reads = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();

    for _ in 0..WORKERS {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        let requests = Arc::clone(&requests);
        let torn = Arc::clone(&torn_reads);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let cfg = snap.load(); // wait-free; pins this version
                                       // A torn config would have version/rate_limit out of sync.
                if cfg.rate_limit as u64 != 100 + cfg.version {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
                drop(cfg);
                requests.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // The operator performs RELOADS hot reloads and tracks how long each
    // store took against the read storm (for eager retirement this
    // includes waiting out the pins on the outgoing version).
    let t_start = Instant::now();
    let mut waits = Vec::with_capacity(RELOADS as usize);
    for version in 1..=RELOADS {
        std::thread::sleep(Duration::from_millis(3));
        let t0 = Instant::now();
        snap.store(Config::v(version));
        waits.push(t0.elapsed());
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = t_start.elapsed();

    let max = waits.iter().max().expect("reloads happened");
    let mean: Duration = waits.iter().sum::<Duration>() / waits.len() as u32;
    let served = requests.load(Ordering::Relaxed);
    println!("config_hot_reload [{label}] ({WORKERS} workers, {RELOADS} reloads)");
    println!("  requests served : {served}");
    println!("  reads/sec       : {:.0}", served as f64 / elapsed.as_secs_f64());
    println!("  torn reads      : {}", torn_reads.load(Ordering::Relaxed));
    println!("  reload mean     : {mean:?}");
    println!("  reload max      : {max:?}");
    println!("  swaps installed : {}", snap.swaps());
    println!("  peak retired    : {}", snap.peak_retired());
    assert_eq!(torn_reads.load(Ordering::Relaxed), 0, "readers saw a torn config");
    assert_eq!(snap.load().version, RELOADS);

    // Everything unpinned and (after a final scan) reclaimed.
    snap.reclaim();
    assert!(snap.is_quiescent(), "retired configs or pins outlived the run");
    println!("  final version   : {RELOADS} (all reloads landed; retired configs reclaimed)\n");
}

fn main() {
    run("eager", RetireEager);
    run("batched", RetireBatched { high_water: 8 });
}
