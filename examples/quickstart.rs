//! Quickstart: protect a value with each of the three constant-RMR
//! reader-writer policies and hammer it from a few threads.
//!
//! Zero ceremony — no `register()` calls anywhere: threads lock directly
//! (as with `std::sync::RwLock`) and pids are leased per thread behind the
//! scenes, returned automatically at thread exit.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rmrw::core::RwLock;
use std::sync::Arc;

fn demo<L>(name: &str, lock: Arc<RwLock<u64, L>>, threads: usize)
where
    L: rmrw::core::RawMultiWriter + 'static,
{
    let mut handles = Vec::new();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        handles.push(std::thread::spawn(move || {
            for i in 0..1_000u64 {
                if i % 10 == 0 {
                    *lock.write() += 1; // exclusive access
                } else {
                    let v = *lock.read(); // shared access
                    std::hint::black_box(v);
                }
            }
        }));
    }
    for t in handles {
        t.join().unwrap();
    }
    let total = *lock.read();
    println!("{name:<28} final counter = {total} (expected {})", threads * 100);
    assert_eq!(total, threads as u64 * 100);
}

fn main() {
    let threads = 4;

    // Theorem 3: nobody starves, FCFS writers, FIFE readers.
    demo("starvation-free (Thm 3)", Arc::new(RwLock::starvation_free(0u64, threads + 1)), threads);

    // Theorem 4: readers never wait for waiting writers.
    demo("reader-priority (Thm 4)", Arc::new(RwLock::reader_priority(0u64, threads + 1)), threads);

    // Theorem 5: writers overtake waiting readers.
    demo("writer-priority (Thm 5)", Arc::new(RwLock::writer_priority(0u64, threads + 1)), threads);

    println!("\nAll three policies preserved every update. See DESIGN.md for the paper map.");
}
