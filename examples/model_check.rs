//! Model-check the paper's algorithms from your own code: exhaustively
//! explore every interleaving of a small instance and check mutual
//! exclusion, deadlock freedom, and the proof invariants from the paper's
//! appendix.
//!
//! ```text
//! cargo run --release --example model_check
//! ```

use rmrw::sim::algos::fig1::Fig1;
use rmrw::sim::algos::fig2::Fig2;
use rmrw::sim::algos::fig4::Fig4;
use rmrw::sim::explore::{explore, StateCheck};
use rmrw::sim::invariants::{fig1_invariants, fig2_invariants};

fn main() {
    println!("Exhaustive bounded model checking (every interleaving):\n");

    let alg = Fig1::new(2);
    let checks: [StateCheck<'_, Fig1>; 1] = [&fig1_invariants];
    let report = explore(&alg, &[2, 1, 1], 10_000_000, &checks);
    println!("Figure 1, 1 writer (2 attempts) + 2 readers (1 each):");
    println!("  {report}");
    assert!(report.clean(), "{:?}", report.violations);

    let alg = Fig2::new(2);
    let checks: [StateCheck<'_, Fig2>; 1] = [&fig2_invariants];
    let report = explore(&alg, &[2, 1, 1], 10_000_000, &checks);
    println!("Figure 2, 1 writer (2 attempts) + 2 readers (1 each):");
    println!("  {report}");
    assert!(report.clean(), "{:?}", report.violations);

    let alg = Fig4::new(2, 1);
    let report = explore(&alg, &[1, 1, 1], 10_000_000, &[]);
    println!("Figure 4, 2 writers + 1 reader (1 attempt each):");
    println!("  {report}");
    assert!(report.clean(), "{:?}", report.violations);

    println!("\nAll configurations clean: P1 holds, invariants hold, no deadlock.");
    println!("The full suites (more processes/attempts + mutant controls) run in");
    println!("`cargo test -p rmr-sim` and `cargo run -p rmr-bench --bin property_matrix`.");
}
