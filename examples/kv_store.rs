//! A read-mostly key-value store protected by the reader-priority lock
//! (Theorem 4) — the workload the paper's introduction motivates: shared
//! data structures where "processes that merely sense the state" dominate.
//!
//! Readers run point lookups continuously; a writer applies batched
//! updates. Under reader priority the lookups never wait behind a *waiting*
//! writer, so read latency stays flat even while updates queue. Lookups
//! that must not wait at all can use `try_read` and fall back to a stale
//! cache — demonstrated below while a write batch holds the lock.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use rmrw::core::rwlock::ReaderPriorityRwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READERS: usize = 3;
const KEYS: u64 = 1024;

fn main() {
    let mut initial = HashMap::new();
    for k in 0..KEYS {
        initial.insert(k, k * 10);
    }
    let store: Arc<ReaderPriorityRwLock<HashMap<u64, u64>>> =
        Arc::new(ReaderPriorityRwLock::reader_priority(initial, READERS + 1));

    let stop = Arc::new(AtomicBool::new(false));
    let lookups = Arc::new(AtomicU64::new(0));
    let try_misses = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();

    for t in 0..READERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let lookups = Arc::clone(&lookups);
        let try_misses = Arc::clone(&try_misses);
        threads.push(std::thread::spawn(move || {
            let mut local = 0u64;
            let mut key = t as u64;
            while !stop.load(Ordering::Relaxed) {
                key = (key.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
                    % KEYS;
                // Non-blocking fast path first; fall back to the blocking
                // read when a write batch owns the store.
                let v = match store.try_read() {
                    Some(guard) => guard.get(&key).copied(),
                    None => {
                        try_misses.fetch_add(1, Ordering::Relaxed);
                        store.read().get(&key).copied()
                    }
                };
                assert!(v.is_some(), "store must stay fully populated");
                local += 1;
            }
            lookups.fetch_add(local, Ordering::Relaxed);
        }));
    }

    // Writer: apply 50 batched updates, measuring how long each write lock
    // acquisition takes while the readers churn.
    let mut write_waits = Vec::new();
    for batch in 0..50u64 {
        let t0 = Instant::now();
        let mut guard = store.write();
        write_waits.push(t0.elapsed());
        for k in 0..KEYS {
            *guard.get_mut(&k).expect("key exists") = batch;
        }
        drop(guard);
        std::thread::sleep(Duration::from_millis(2));
    }

    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }

    let total_lookups = lookups.load(Ordering::Relaxed);
    let max_wait = write_waits.iter().max().expect("50 batches");
    let mean_wait: Duration = write_waits.iter().sum::<Duration>() / write_waits.len() as u32;

    println!("kv_store (reader-priority, {READERS} readers, 50 write batches over {KEYS} keys)");
    println!("  lookups served      : {total_lookups}");
    println!("  try_read fallbacks  : {}", try_misses.load(Ordering::Relaxed));
    println!("  write-lock wait mean: {mean_wait:?}");
    println!("  write-lock wait max : {max_wait:?}");
    println!();
    println!("Note: under reader priority those write waits are unbounded in");
    println!("principle (RP1); the writer only proceeds in gaps of the read");
    println!("storm. Swap in RwLock::writer_priority for bounded write waits.");

    // Consistency: final values all from the last batch.
    let guard = store.read();
    assert!(guard.values().all(|&v| v == 49));
    println!("final state consistent: all {KEYS} keys at batch 49");
}
