//! Randomized property tests over the workspace's core data structures and
//! the simulator, driven by the workspace's own seeded PRNG (the external
//! `proptest` dependency was replaced; the properties are unchanged):
//!
//! * the packed `[writer-waiting, reader-count]` fetch&add cell against a
//!   reference model;
//! * the CC cost model against an independently written reference;
//! * arbitrary schedules driving the Figure 1/2/4 machines: safety and the
//!   paper's proof invariants must hold after **every** step of **any**
//!   schedule the generator dreams up;
//! * the pid registry never double-issues;
//! * the pid lease reclaim against `rmr-bravo`'s visible-readers table:
//!   a leaked fast-path guard pins its pid *and* its published slot;
//! * the DSM model charges an RMR exactly when the home differs.
//!
//! Every case is reproducible: failures print the exact PRNG seed, and
//! setting `RMR_TEST_SEED=<that seed>` makes every test here run *only*
//! that seed — a printed failure replays as a single line.

use rmrw::core::packed::{Packed, PackedFaa};
use rmrw::sim::algos::fig1::Fig1;
use rmrw::sim::algos::fig2::Fig2;
use rmrw::sim::algos::fig4::Fig4;
use rmrw::sim::cost::{AccessKind, CcModel, CostModel, DsmModel, FreeModel};
use rmrw::sim::invariants::{fig1_invariants, fig2_invariants};
use rmrw::sim::machine::{Algorithm, Phase, Role};
use rmrw::sim::rng::SplitMix64;
use rmrw::sim::runner::{Config, RoundRobin, Runner};
use std::collections::HashSet;
use std::sync::atomic::Ordering;

const CASES: u64 = 64;

/// The PRNG seeds a test battery runs: the usual `tag + case` sweep, or —
/// when `RMR_TEST_SEED` is set — exactly that one seed, so the seed a
/// failure prints is directly replayable (`RMR_TEST_SEED=0x… cargo test`).
fn case_seeds(tag: u64) -> Vec<u64> {
    if std::env::var("RMR_TEST_SEED").is_ok() {
        vec![rmr_check::env_seed(0)]
    } else {
        (0..CASES).map(|case| tag + case).collect()
    }
}

// ---------------------------------------------------------------------
// PackedFaa vs. a two-field reference model
// ---------------------------------------------------------------------

#[test]
fn packed_faa_matches_reference_model() {
    for seed in case_seeds(0x9ac8_0000) {
        let mut rng = SplitMix64::new(seed);
        let cell = PackedFaa::new();
        let mut readers = 0u64;
        let mut writer = false;
        for _ in 0..rng.gen_index(200) {
            // Respect the algorithm's usage contract (the fields are only
            // moved in legal directions); illegal ops are skipped exactly
            // when the algorithms would never issue them.
            match rng.gen_index(4) {
                0 => {
                    let old = cell.add_reader(Ordering::AcqRel);
                    assert_eq!(old, Packed::new(writer, readers), "seed {seed:#x}");
                    readers += 1;
                }
                1 if readers > 0 => {
                    let old = cell.sub_reader(Ordering::AcqRel);
                    assert_eq!(old, Packed::new(writer, readers), "seed {seed:#x}");
                    readers -= 1;
                }
                2 if !writer => {
                    let old = cell.add_writer(Ordering::AcqRel);
                    assert_eq!(old, Packed::new(false, readers), "seed {seed:#x}");
                    writer = true;
                }
                3 if writer => {
                    let old = cell.sub_writer(Ordering::AcqRel);
                    assert_eq!(old, Packed::new(true, readers), "seed {seed:#x}");
                    writer = false;
                }
                _ => {}
            }
            assert_eq!(
                cell.load(Ordering::Acquire),
                Packed::new(writer, readers),
                "seed {seed:#x}"
            );
            assert_eq!(cell.load(Ordering::Acquire).writer_waiting(), writer, "seed {seed:#x}");
            assert_eq!(cell.load(Ordering::Acquire).reader_count(), readers, "seed {seed:#x}");
        }
    }
}

// ---------------------------------------------------------------------
// CC cost model vs. an independent reference implementation
// ---------------------------------------------------------------------

/// Reference CC model: a set of (pid, var) cached pairs, written without
/// looking at the bitmask implementation.
#[derive(Default)]
struct RefCc {
    cached: HashSet<(usize, usize)>,
}

impl RefCc {
    fn account(&mut self, pid: usize, var: usize, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => {
                let hit = self.cached.contains(&(pid, var));
                self.cached.insert((pid, var));
                !hit
            }
            AccessKind::Update => {
                let holders: Vec<usize> =
                    self.cached.iter().filter(|(_, v)| *v == var).map(|(p, _)| *p).collect();
                let exclusive = holders == [pid];
                self.cached.retain(|(_, v)| *v != var);
                self.cached.insert((pid, var));
                !exclusive
            }
        }
    }
}

#[test]
fn cc_model_matches_reference() {
    for seed in case_seeds(0xcc00_0000) {
        let mut rng = SplitMix64::new(seed);
        let mut cc = CcModel::new(6, 4);
        let mut reference = RefCc::default();
        for _ in 0..rng.gen_index(300) {
            let pid = rng.gen_index(6);
            let var = rng.gen_index(4);
            let kind = if rng.gen_bool(0.5) { AccessKind::Update } else { AccessKind::Read };
            let got = cc.account(pid, rmrw::sim::mem::VarId::from_index(var), kind);
            let want = reference.account(pid, var, kind);
            assert_eq!(got, want, "seed {seed:#x}: divergence at pid={pid} var={var} {kind:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Arbitrary schedules against the paper's machines + invariants
// ---------------------------------------------------------------------

/// Drives `alg` with an arbitrary pid schedule, checking `check` after
/// every step and exclusion throughout.
fn drive<A: Algorithm>(
    seed: u64,
    alg: A,
    schedule_len: usize,
    rng: &mut SplitMix64,
    attempts: u32,
    check: impl Fn(&A, &Config<A>) -> Result<(), String>,
) {
    let mut runner = Runner::new(alg, FreeModel, attempts);
    for _ in 0..schedule_len {
        let runnable = runner.runnable();
        if runnable.is_empty() {
            break;
        }
        let pid = runnable[rng.gen_index(runnable.len())];
        runner.step(pid);
        assert!(runner.violations().is_empty(), "seed {seed:#x}: P1: {:?}", runner.violations());
        if let Err(e) = check(runner.algorithm(), runner.config()) {
            panic!("seed {seed:#x}: invariant: {e}");
        }
    }
    // No process may be wedged in a state it cannot leave while others are
    // parked: run a fair round-robin to completion as a liveness epilogue.
    let mut rr = RoundRobin::default();
    runner.run(&mut rr, 1_000_000);
    assert!(runner.quiescent(), "seed {seed:#x}: schedule left the system stuck");
    assert!(runner.violations().is_empty(), "seed {seed:#x}");
}

#[test]
fn fig1_invariants_hold_under_arbitrary_schedules() {
    for seed in case_seeds(0xf1a0_0000) {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_index(600);
        drive(seed, Fig1::new(3), len, &mut rng, 2, fig1_invariants);
    }
}

#[test]
fn fig2_invariants_hold_under_arbitrary_schedules() {
    for seed in case_seeds(0xf2a0_0000) {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_index(600);
        drive(seed, Fig2::new(3), len, &mut rng, 2, fig2_invariants);
    }
}

#[test]
fn fig4_safety_holds_under_arbitrary_schedules() {
    for seed in case_seeds(0xf4a0_0000) {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_index(600);
        drive(seed, Fig4::new(2, 2), len, &mut rng, 2, |_, _| Ok(()));
    }
}

#[test]
fn fig1_writer_in_cs_excludes_everyone() {
    for seed in case_seeds(0xf1b0_0000) {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_index(400);
        // Redundant with the runner's online check, but stated directly
        // from phases as the paper states P1.
        drive(seed, Fig1::new(2), len, &mut rng, 2, |alg, cfg| {
            let in_cs: Vec<usize> = (0..alg.processes())
                .filter(|&p| alg.phase(p, &cfg.locals[p]) == Phase::Cs)
                .collect();
            let writers = in_cs.iter().filter(|&&p| alg.role(p) == Role::Writer).count();
            if writers > 0 && in_cs.len() > 1 {
                return Err(format!("CS occupants {in_cs:?} include a writer"));
            }
            Ok(())
        });
    }
}

// ---------------------------------------------------------------------
// PID registry: arbitrary allocate/release sequences never double-issue
// ---------------------------------------------------------------------

#[test]
fn registry_never_double_allocates() {
    use rmrw::core::registry::PidRegistry;
    for seed in case_seeds(0x81e6_0000) {
        let mut rng = SplitMix64::new(seed);
        let reg = PidRegistry::new(8);
        let mut held: Vec<rmrw::core::Pid> = Vec::new();
        for _ in 0..rng.gen_index(200) {
            if rng.gen_bool(0.5) {
                match reg.allocate() {
                    Ok(pid) => {
                        assert!(!held.contains(&pid), "seed {seed:#x}: pid {pid} issued twice");
                        held.push(pid);
                    }
                    Err(_) => assert_eq!(held.len(), 8, "seed {seed:#x}: spurious exhaustion"),
                }
            } else if let Some(pid) = held.pop() {
                reg.release(pid);
            }
            assert_eq!(reg.allocated(), held.len(), "seed {seed:#x}");
        }
    }
}

// ---------------------------------------------------------------------
// PidRegistry × Bravo: leaked fast-path guards pin pid AND slot
// ---------------------------------------------------------------------

/// A leaked (`mem::forget`) fast-path read guard leaves its raw read
/// session — here: its visible-readers table slot — open forever. The
/// thread-exit lease reclaim must then keep the pid reserved (re-issuing
/// it would let a second thread CAS against a slot mid-session), and
/// nothing may unpublish the slot behind the leaked guard's back.
#[test]
fn bravo_leaked_fast_guard_pins_pid_and_slot() {
    use rmrw::baselines::TicketRwLock;
    use rmrw::bravo::Bravo;
    use rmrw::core::RwLock;
    use std::sync::Arc;

    for seed in case_seeds(0xb2a7_0000) {
        let mut rng = SplitMix64::new(seed);
        let lock = Arc::new(RwLock::with_raw(0u8, Bravo::new(TicketRwLock::new(8))));
        let warmups = rng.gen_index(16);
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || {
            // Clean passages first: each publishes and retracts a slot.
            for _ in 0..warmups {
                let _ = *l2.read();
            }
            assert_eq!(l2.raw().published(), 0, "seed {seed:#x}: clean reads left a slot");
            std::mem::forget(l2.read()); // an uncontended read is fast-path
        })
        .join()
        .unwrap();

        // The slot stays published (the read session never ended) …
        assert_eq!(lock.raw().published(), 1, "seed {seed:#x}: leaked slot vanished");
        assert!(!lock.raw().is_quiescent(), "seed {seed:#x}");
        // … and the lease reclaim kept the pid reserved rather than
        // returning it for re-issue.
        assert_eq!(lock.registered(), 1, "seed {seed:#x}: leaked pid was reclaimed");
        // A bounded write attempt must observe the reader and fail, not
        // wait on a session that will never end.
        assert!(lock.try_write().is_none(), "seed {seed:#x}: try_write ignored the leaked reader");
    }
}

/// Clean thread exits reclaim their leased pids as usual, and that
/// reclaim must not free (or unpublish) a slot that is still published by
/// a *different*, leaked session.
#[test]
fn bravo_thread_exit_reclaim_spares_published_slots() {
    use rmrw::baselines::TicketRwLock;
    use rmrw::bravo::Bravo;
    use rmrw::core::RwLock;
    use std::sync::Arc;

    for seed in case_seeds(0xb2a8_0000) {
        let mut rng = SplitMix64::new(seed);
        let lock = Arc::new(RwLock::with_raw(0u8, Bravo::new(TicketRwLock::new(8))));

        // One thread leaks a fast-path guard: its pid and slot are pinned.
        let l2 = Arc::clone(&lock);
        std::thread::spawn(move || std::mem::forget(l2.read())).join().unwrap();
        assert_eq!((lock.registered(), lock.raw().published()), (1, 1), "seed {seed:#x}");

        // A churn of clean reader threads: their leases must come and go
        // without touching the leaked session's pid or slot.
        for _ in 0..1 + rng.gen_index(4) {
            let l2 = Arc::clone(&lock);
            let reads = 1 + rng.gen_index(8);
            std::thread::spawn(move || {
                for _ in 0..reads {
                    let _ = *l2.read();
                }
            })
            .join()
            .unwrap();
            assert_eq!(lock.registered(), 1, "seed {seed:#x}: clean exit freed the leaked pid");
            assert_eq!(
                lock.raw().published(),
                1,
                "seed {seed:#x}: clean exit unpublished the leaked slot"
            );
        }
    }
}

// ---------------------------------------------------------------------
// PidRegistry × epoch table: leaked snapshot guards pin pid AND epoch
// ---------------------------------------------------------------------

/// A leaked (`mem::forget`) snapshot guard leaves its read session — its
/// published epoch — open forever. The pin must block reclamation
/// *boundedly*: after `k` subsequent stores, **exactly** `k` payloads sit
/// retired (every version since the pin, nothing more), the lease
/// reclaim keeps the pid reserved, and the epoch stays published.
#[test]
fn swap_leaked_guard_pins_pid_and_epoch() {
    use rmrw::core::mwmr::MwmrStarvationFree;
    use rmrw::swap::{RetireBatched, Snapshot};
    use std::sync::Arc;

    for seed in case_seeds(0x54a9_1000) {
        let mut rng = SplitMix64::new(seed);
        // Batched with an unreachable high-water mark: the leaked pin
        // must never make a *writer* wait (that is eager's contract), so
        // the stores below all return immediately.
        let snap = Arc::new(Snapshot::with_raw(
            0u64,
            MwmrStarvationFree::new(8),
            RetireBatched { high_water: usize::MAX },
        ));
        let warmups = rng.gen_index(16);
        let s2 = Arc::clone(&snap);
        std::thread::spawn(move || {
            // Clean passages first: each publishes and clears an epoch.
            for _ in 0..warmups {
                let _ = *s2.load();
            }
            assert_eq!(s2.published(), 0, "seed {seed:#x}: clean loads left an epoch published");
            std::mem::forget(s2.load());
        })
        .join()
        .unwrap();

        // The epoch stays published (the pin never ended) and the lease
        // reclaim kept the pid reserved rather than re-issuing it.
        assert_eq!(snap.published(), 1, "seed {seed:#x}: leaked epoch vanished");
        assert_eq!(snap.registry().allocated(), 1, "seed {seed:#x}: leaked pid was reclaimed");
        assert!(!snap.is_quiescent(), "seed {seed:#x}");

        // k stores against the pin: each retires its predecessor, and the
        // pinned epoch (older than every retiree) forbids freeing any of
        // them — exactly k retired, no more, no fewer, store after store.
        let k = 1 + rng.gen_index(16);
        for i in 1..=k as u64 {
            snap.store(i);
            snap.reclaim();
            assert_eq!(
                snap.retired(),
                i as usize,
                "seed {seed:#x}: reclamation not blocked exactly by the pin"
            );
        }
        assert_eq!(*snap.load(), k as u64, "seed {seed:#x}: stores must proceed past the pin");
    }
}

/// Clean thread exits reclaim their leased pids as usual, and that
/// reclaim must never clear (un-pin) an epoch that is still published by
/// a *different*, leaked session — un-pinning would let a writer free the
/// payload under the leaked guard.
#[test]
fn swap_thread_exit_reclaim_spares_published_epochs() {
    use rmrw::core::mwmr::MwmrStarvationFree;
    use rmrw::swap::{RetireBatched, Snapshot};
    use std::sync::Arc;

    for seed in case_seeds(0x54a9_2000) {
        let mut rng = SplitMix64::new(seed);
        let snap = Arc::new(Snapshot::with_raw(
            0u64,
            MwmrStarvationFree::new(8),
            RetireBatched { high_water: usize::MAX },
        ));

        // One thread leaks a guard: its pid and epoch are pinned.
        let s2 = Arc::clone(&snap);
        std::thread::spawn(move || std::mem::forget(s2.load())).join().unwrap();
        assert_eq!((snap.registry().allocated(), snap.published()), (1, 1), "seed {seed:#x}");

        // Establish this thread's own cached lease up front (it stays
        // allocated for the thread's lifetime — that is the cache), so
        // the churn below has a stable allocation baseline.
        let _ = *snap.load();
        let baseline = snap.registry().allocated();

        // A churn of clean reader threads (with interleaved stores so the
        // epochs they publish actually differ): their leases must come
        // and go without touching the leaked session's pid or epoch.
        for round in 0..1 + rng.gen_index(4) {
            if rng.gen_bool(0.5) {
                snap.store(round as u64);
            }
            let s2 = Arc::clone(&snap);
            let reads = 1 + rng.gen_index(8);
            std::thread::spawn(move || {
                for _ in 0..reads {
                    let _ = *s2.load();
                }
            })
            .join()
            .unwrap();
            assert_eq!(
                snap.registry().allocated(),
                baseline,
                "seed {seed:#x}: clean exit freed the leaked pid"
            );
            assert_eq!(
                snap.published(),
                1,
                "seed {seed:#x}: clean exit un-pinned the leaked epoch"
            );
        }
    }
}

/// Dropped guards always unpin: random interleavings of open / drop /
/// store on one thread (nested guards draw distinct transient pids, so
/// several can be open at once) keep the published-epoch count equal to
/// the open-guard count at every step, and a final drop-all + reclaim
/// leaves the snapshot fully quiescent.
#[test]
fn swap_dropped_guards_always_unpin() {
    use rmrw::core::mwmr::MwmrStarvationFree;
    use rmrw::swap::{RetireBatched, Snapshot};

    const MAX_OPEN: usize = 6;
    for seed in case_seeds(0x54a9_3000) {
        let mut rng = SplitMix64::new(seed);
        // Capacity: up to MAX_OPEN pinned guards + the store path's own
        // transient pid while guards keep the cached lease busy.
        let snap = Snapshot::with_raw(
            0u64,
            MwmrStarvationFree::new(MAX_OPEN + 2),
            RetireBatched { high_water: usize::MAX },
        );
        let mut value = 0u64;
        let mut open = Vec::new();
        for _ in 0..rng.gen_index(200) {
            match rng.gen_index(3) {
                0 if open.len() < MAX_OPEN => {
                    let guard = snap.load();
                    assert_eq!(*guard, value, "seed {seed:#x}: fresh guard saw a stale snapshot");
                    open.push((guard, value));
                }
                1 if !open.is_empty() => {
                    drop(open.swap_remove(rng.gen_index(open.len())));
                }
                2 => {
                    value += 1;
                    snap.store(value);
                }
                _ => {}
            }
            for (guard, pinned) in &open {
                assert_eq!(**guard, *pinned, "seed {seed:#x}: snapshot drifted under its guard");
            }
            assert_eq!(
                snap.published(),
                open.len(),
                "seed {seed:#x}: published epochs diverged from open guards"
            );
        }
        drop(open);
        snap.reclaim();
        assert_eq!(snap.published(), 0, "seed {seed:#x}: a dropped guard left its epoch pinned");
        assert!(snap.is_quiescent(), "seed {seed:#x}: retired payloads survived a full reclaim");
    }
}

// ---------------------------------------------------------------------
// DSM model: an access is remote exactly when the home differs
// ---------------------------------------------------------------------

#[test]
fn dsm_model_matches_definition() {
    for seed in case_seeds(0xd500_0000) {
        let mut rng = SplitMix64::new(seed);
        let n_vars = 1 + rng.gen_index(5);
        let homes: Vec<usize> = (0..n_vars).map(|_| rng.gen_index(4)).collect();
        let mut dsm = DsmModel::new(homes.clone());
        for _ in 0..rng.gen_index(100) {
            let pid = rng.gen_index(4);
            let var = rng.gen_index(n_vars);
            let kind = if rng.gen_bool(0.5) { AccessKind::Update } else { AccessKind::Read };
            let got = dsm.account(pid, rmrw::sim::mem::VarId::from_index(var), kind);
            assert_eq!(got, homes[var] != pid, "seed {seed:#x}");
        }
    }
}

// ---------------------------------------------------------------------
// Waker table: random park/wake/cancel sequences against a model
// ---------------------------------------------------------------------

/// A waker that counts its deliveries, so the tests can equate "woken"
/// with an observable number rather than scheduler behavior.
struct CountingWake(std::sync::atomic::AtomicU64);

impl std::task::Wake for CountingWake {
    fn wake(self: std::sync::Arc<Self>) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Random single-threaded op sequences over the `rmr-async` waker table,
/// checked against a reference model after **every** op: the parked-side
/// counters always agree with the model, `wake_*` delivers exactly the
/// modeled set (each registration woken at most once), and a
/// `deregister` (the cancellation path) removes a registration without
/// ever firing its waker.
#[test]
fn waker_table_random_park_wake_cancel_matches_model() {
    use rmrw::async_lock::park::{WaitKind, WakerTable};
    use rmrw::mutex::Native;
    use std::collections::HashMap;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::task::Waker;

    const SLOTS: usize = 6;
    for seed in case_seeds(0xaa51_0000) {
        let mut rng = SplitMix64::new(seed);
        let table: WakerTable<Native> = WakerTable::new(SLOTS);
        let counters: Vec<Arc<CountingWake>> = (0..SLOTS)
            .map(|_| Arc::new(CountingWake(std::sync::atomic::AtomicU64::new(0))))
            .collect();
        let wakers: Vec<Waker> = counters.iter().map(|c| Waker::from(Arc::clone(c))).collect();
        let mut wakes_expected = [0u64; SLOTS];
        // The model: which pid is parked, and as what.
        let mut model: HashMap<usize, WaitKind> = HashMap::new();

        for _ in 0..rng.gen_index(200) {
            let pid = rng.gen_index(SLOTS);
            match rng.gen_index(5) {
                0 | 1 => {
                    let kind = if rng.gen_bool(0.5) { WaitKind::Reader } else { WaitKind::Writer };
                    // Single-owner discipline: re-registering is legal
                    // only under the same kind (a future never changes
                    // role mid-flight).
                    let kind = *model.entry(pid).or_insert(kind);
                    table.register(pid, kind, &wakers[pid]);
                }
                2 => {
                    table.deregister(pid);
                    model.remove(&pid);
                }
                3 => {
                    let woken: Vec<usize> = model
                        .iter()
                        .filter(|(_, k)| **k == WaitKind::Writer)
                        .map(|(p, _)| *p)
                        .collect();
                    assert_eq!(table.wake_writers(), woken.len(), "seed {seed:#x}");
                    for p in woken {
                        wakes_expected[p] += 1;
                        model.remove(&p);
                    }
                }
                _ => {
                    let woken: Vec<usize> = model.keys().copied().collect();
                    assert_eq!(table.wake_all(), woken.len(), "seed {seed:#x}");
                    for p in woken {
                        wakes_expected[p] += 1;
                        model.remove(&p);
                    }
                }
            }
            let readers = model.values().filter(|k| **k == WaitKind::Reader).count();
            let writers = model.values().filter(|k| **k == WaitKind::Writer).count();
            assert_eq!(
                (table.parked_readers(), table.parked_writers()),
                (readers, writers),
                "seed {seed:#x}: counters diverged from the model"
            );
            for (p, c) in counters.iter().enumerate() {
                assert_eq!(
                    c.0.load(Ordering::SeqCst),
                    wakes_expected[p],
                    "seed {seed:#x}: pid {p} saw an unexpected wake"
                );
            }
        }
    }
}

/// Multi-threaded stress: owner threads randomly park/cancel while wake
/// scans race them. Invariants: deliveries never exceed registrations
/// (a waker fires at most once per park), and after the owners retire
/// and a final scan runs, nothing is left parked.
#[test]
fn waker_table_concurrent_park_wake_cancel_leaves_nothing_parked() {
    use rmrw::async_lock::park::{WaitKind, WakerTable};
    use rmrw::mutex::Native;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::task::Waker;

    const OWNERS: usize = 4;
    for seed in case_seeds(0xaa51_1000) {
        let table: Arc<WakerTable<Native>> = Arc::new(WakerTable::new(OWNERS));
        let delivered = Arc::new(CountingWake(std::sync::atomic::AtomicU64::new(0)));
        let registrations = Arc::new(std::sync::atomic::AtomicU64::new(0));

        let mut threads = Vec::new();
        for pid in 0..OWNERS {
            let table = Arc::clone(&table);
            let delivered = Arc::clone(&delivered);
            let registrations = Arc::clone(&registrations);
            threads.push(std::thread::spawn(move || {
                let waker = Waker::from(Arc::clone(&delivered));
                let mut rng = SplitMix64::new(seed ^ (pid as u64) << 17);
                let mut kind = WaitKind::Reader;
                for _ in 0..200 {
                    let next = if rng.gen_bool(0.5) { WaitKind::Reader } else { WaitKind::Writer };
                    if next != kind {
                        // A future's wait kind is fixed for its lifetime;
                        // switching kinds models dropping the pending
                        // future and starting a new one on the same pid.
                        table.deregister(pid);
                        kind = next;
                    }
                    table.register(pid, kind, &waker);
                    registrations.fetch_add(1, Ordering::SeqCst);
                    if rng.gen_bool(0.5) {
                        table.deregister(pid); // the cancellation path
                    }
                }
                table.deregister(pid);
            }));
        }
        {
            let table = Arc::clone(&table);
            threads.push(std::thread::spawn(move || {
                for i in 0..400 {
                    if i % 3 == 0 {
                        table.wake_writers();
                    } else {
                        table.wake_all();
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        table.wake_all();
        assert_eq!(
            (table.parked_readers(), table.parked_writers()),
            (0, 0),
            "seed {seed:#x}: a slot stayed parked after every owner retired"
        );
        assert!(
            delivered.0.load(Ordering::SeqCst) <= registrations.load(Ordering::SeqCst),
            "seed {seed:#x}: more deliveries than registrations"
        );
    }
}

// ---------------------------------------------------------------------
// Cancelled async futures: nothing stays pinned (extends the
// PidRegistry × guard-leak battery with the async acquisition path)
// ---------------------------------------------------------------------

/// Random rounds of "writer holds → read futures go pending → a random
/// subset is dropped mid-acquisition": a dropped pending future must
/// release its pid and waker slot, while a *leaked guard* (`mem::forget`)
/// must keep its pid pinned — same contract as the sync front end.
#[test]
fn cancelled_async_future_never_pins_pid_or_slot() {
    use rmrw::async_lock::exec::parker_waker;
    use rmrw::async_lock::{AsyncRwLock, ThreadParker};
    use rmrw::baselines::TicketRwLock;
    use std::future::Future;
    use std::sync::Arc;
    use std::task::{Context, Poll};

    for seed in case_seeds(0xaa51_2000) {
        let mut rng = SplitMix64::new(seed);
        let lock = AsyncRwLock::with_raw(0u64, TicketRwLock::new(8));
        let waker = parker_waker(Arc::new(ThreadParker::current()));
        let mut cx = Context::from_waker(&waker);

        for _ in 0..1 + rng.gen_index(8) {
            let writer = lock.try_write().expect("uncontended writer");
            let pending = 1 + rng.gen_index(4);
            let mut futures = Vec::new();
            for _ in 0..pending {
                let mut fut = Box::pin(lock.read());
                assert!(
                    fut.as_mut().poll(&mut cx).is_pending(),
                    "seed {seed:#x}: read went through a held write lock"
                );
                futures.push(fut);
            }
            assert_eq!(lock.parked_readers(), pending, "seed {seed:#x}");
            assert_eq!(lock.registered(), pending + 1, "seed {seed:#x}");
            // Drop a random subset mid-acquisition, in random order.
            while !futures.is_empty() {
                let victim = rng.gen_index(futures.len());
                drop(futures.swap_remove(victim));
            }
            assert_eq!(
                (lock.parked_readers(), lock.registered()),
                (0, 1),
                "seed {seed:#x}: a cancelled future left a slot or pid pinned"
            );
            drop(writer);
            assert!(lock.is_quiescent(), "seed {seed:#x}");
        }

        // Contrast: a *leaked guard* is a live session, and must pin its
        // pid exactly like the sync front end's leaked guards.
        let leak = AsyncRwLock::with_raw(0u64, TicketRwLock::new(4));
        std::mem::forget(match Box::pin(leak.read()).as_mut().poll(&mut cx) {
            Poll::Ready(guard) => guard,
            Poll::Pending => panic!("seed {seed:#x}: uncontended read must be ready"),
        });
        assert_eq!(leak.registered(), 1, "seed {seed:#x}: leaked guard must pin its pid");
        assert_eq!(leak.parked_readers(), 0, "seed {seed:#x}: but never a waker slot");
    }
}
