//! Property-based tests (proptest) over the workspace's core data
//! structures and the simulator.
//!
//! * the packed `[writer-waiting, reader-count]` fetch&add cell against a
//!   reference model;
//! * the CC cost model against an independently written reference;
//! * arbitrary schedules driving the Figure 1/2/4 machines: safety and the
//!   paper's proof invariants must hold after **every** step of **any**
//!   schedule proptest can dream up.

use proptest::prelude::*;
use rmrw::core::packed::{Packed, PackedFaa};
use rmrw::sim::algos::fig1::Fig1;
use rmrw::sim::algos::fig2::Fig2;
use rmrw::sim::algos::fig4::Fig4;
use rmrw::sim::cost::{AccessKind, CcModel, CostModel, FreeModel};
use rmrw::sim::invariants::{fig1_invariants, fig2_invariants};
use rmrw::sim::machine::{Algorithm, Phase, Role};
use rmrw::sim::runner::{Config, Runner};
use std::collections::HashSet;

// ---------------------------------------------------------------------
// PackedFaa vs. a two-field reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum PackedOp {
    AddReader,
    SubReader,
    AddWriter,
    SubWriter,
}

fn packed_ops() -> impl Strategy<Value = Vec<PackedOp>> {
    proptest::collection::vec(
        prop_oneof![
            Just(PackedOp::AddReader),
            Just(PackedOp::SubReader),
            Just(PackedOp::AddWriter),
            Just(PackedOp::SubWriter),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn packed_faa_matches_reference_model(ops in packed_ops()) {
        let cell = PackedFaa::new();
        let mut readers = 0u64;
        let mut writer = false;
        for op in ops {
            // Respect the algorithm's usage contract (the fields are only
            // moved in legal directions); illegal ops are skipped exactly
            // when the algorithms would never issue them.
            match op {
                PackedOp::AddReader => {
                    let old = cell.add_reader();
                    prop_assert_eq!(old, Packed::new(writer, readers));
                    readers += 1;
                }
                PackedOp::SubReader if readers > 0 => {
                    let old = cell.sub_reader();
                    prop_assert_eq!(old, Packed::new(writer, readers));
                    readers -= 1;
                }
                PackedOp::AddWriter if !writer => {
                    let old = cell.add_writer();
                    prop_assert_eq!(old, Packed::new(false, readers));
                    writer = true;
                }
                PackedOp::SubWriter if writer => {
                    let old = cell.sub_writer();
                    prop_assert_eq!(old, Packed::new(true, readers));
                    writer = false;
                }
                _ => {}
            }
            prop_assert_eq!(cell.load(), Packed::new(writer, readers));
            prop_assert_eq!(cell.load().writer_waiting(), writer);
            prop_assert_eq!(cell.load().reader_count(), readers);
        }
    }
}

// ---------------------------------------------------------------------
// CC cost model vs. an independent reference implementation
// ---------------------------------------------------------------------

/// Reference CC model: a set of (pid, var) cached pairs, written without
/// looking at the bitmask implementation.
#[derive(Default)]
struct RefCc {
    cached: HashSet<(usize, usize)>,
}

impl RefCc {
    fn account(&mut self, pid: usize, var: usize, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => {
                let hit = self.cached.contains(&(pid, var));
                self.cached.insert((pid, var));
                !hit
            }
            AccessKind::Update => {
                let holders: Vec<usize> = self
                    .cached
                    .iter()
                    .filter(|(_, v)| *v == var)
                    .map(|(p, _)| *p)
                    .collect();
                let exclusive = holders == [pid];
                self.cached.retain(|(_, v)| *v != var);
                self.cached.insert((pid, var));
                !exclusive
            }
        }
    }
}

proptest! {
    #[test]
    fn cc_model_matches_reference(
        accesses in proptest::collection::vec(
            (0usize..6, 0usize..4, prop::bool::ANY), 0..300)
    ) {
        let mut cc = CcModel::new(6, 4);
        let mut reference = RefCc::default();
        for (pid, var, is_update) in accesses {
            let kind = if is_update { AccessKind::Update } else { AccessKind::Read };
            let got = cc.account(pid, rmrw::sim::mem::VarId::from_index(var), kind);
            let want = reference.account(pid, var, kind);
            prop_assert_eq!(got, want, "divergence at pid={} var={} {:?}", pid, var, kind);
        }
    }
}

// ---------------------------------------------------------------------
// Arbitrary schedules against the paper's machines + invariants
// ---------------------------------------------------------------------

/// Drives `alg` with an arbitrary pid schedule, checking `check` after
/// every step and exclusion throughout.
fn drive<A: Algorithm>(
    alg: A,
    schedule: &[u8],
    attempts: u32,
    check: impl Fn(&A, &Config<A>) -> Result<(), String>,
) -> Result<(), TestCaseError> {
    let n = alg.processes();
    let mut runner = Runner::new(alg, FreeModel, attempts);
    for &raw in schedule {
        let runnable = runner.runnable();
        if runnable.is_empty() {
            break;
        }
        let pid = runnable[raw as usize % runnable.len()];
        runner.step(pid);
        prop_assert!(runner.violations().is_empty(), "P1: {:?}", runner.violations());
        check(runner.algorithm(), runner.config())
            .map_err(|e| TestCaseError::fail(format!("invariant: {e}")))?;
    }
    // No process may be wedged in a state it cannot leave while others are
    // parked: run a fair round-robin to completion as a liveness epilogue.
    let mut rr = rmrw::sim::runner::RoundRobin::default();
    runner.run(&mut rr, 1_000_000);
    prop_assert!(runner.quiescent(), "schedule left the system stuck");
    prop_assert!(runner.violations().is_empty());
    let _ = n;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fig1_invariants_hold_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..600)
    ) {
        drive(Fig1::new(3), &schedule, 2, fig1_invariants)?;
    }

    #[test]
    fn fig2_invariants_hold_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..600)
    ) {
        drive(Fig2::new(3), &schedule, 2, fig2_invariants)?;
    }

    #[test]
    fn fig4_safety_holds_under_arbitrary_schedules(
        schedule in proptest::collection::vec(any::<u8>(), 0..600)
    ) {
        drive(Fig4::new(2, 2), &schedule, 2, |_, _| Ok(()))?;
    }

    #[test]
    fn fig1_writer_in_cs_excludes_everyone(
        schedule in proptest::collection::vec(any::<u8>(), 0..400)
    ) {
        // Redundant with the runner's online check, but stated directly
        // from phases as the paper states P1.
        drive(Fig1::new(2), &schedule, 2, |alg, cfg| {
            let in_cs: Vec<usize> = (0..alg.processes())
                .filter(|&p| alg.phase(p, &cfg.locals[p]) == Phase::Cs)
                .collect();
            let writers = in_cs.iter().filter(|&&p| alg.role(p) == Role::Writer).count();
            if writers > 0 && in_cs.len() > 1 {
                return Err(format!("CS occupants {in_cs:?} include a writer"));
            }
            Ok(())
        })?;
    }
}

// ---------------------------------------------------------------------
// PID registry: arbitrary allocate/release sequences never double-issue
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn registry_never_double_allocates(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        use rmrw::core::registry::PidRegistry;
        let reg = PidRegistry::new(8);
        let mut held: Vec<rmrw::core::Pid> = Vec::new();
        for alloc in ops {
            if alloc {
                match reg.allocate() {
                    Ok(pid) => {
                        prop_assert!(!held.contains(&pid), "pid {pid} issued twice");
                        held.push(pid);
                    }
                    Err(_) => prop_assert_eq!(held.len(), 8, "spurious exhaustion"),
                }
            } else if let Some(pid) = held.pop() {
                reg.release(pid);
            }
            prop_assert_eq!(reg.allocated(), held.len());
        }
    }
}

// ---------------------------------------------------------------------
// DSM model: an access is remote exactly when the home differs
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dsm_model_matches_definition(
        homes in proptest::collection::vec(0usize..4, 1..6),
        accesses in proptest::collection::vec((0usize..4, 0usize..6, any::<bool>()), 0..100),
    ) {
        use rmrw::sim::cost::DsmModel;
        let n_vars = homes.len();
        let mut dsm = DsmModel::new(homes.clone());
        for (pid, var, is_update) in accesses {
            let var = var % n_vars;
            let kind = if is_update { AccessKind::Update } else { AccessKind::Read };
            let got = dsm.account(pid, rmrw::sim::mem::VarId::from_index(var), kind);
            prop_assert_eq!(got, homes[var] != pid);
        }
    }
}
