//! Cross-crate integration: the unified typed front end over every raw
//! lock in the workspace (the paper's policies *and* the baselines),
//! exercised through the facade crate — via both the leased-pid and the
//! pinned-handle paths.

use rmrw::baselines::{
    CentralizedRwLock, CourtoisWriterPrefRwLock, DistributedFlagRwLock, StdRwLock, TicketRwLock,
    TournamentRwLock,
};
use rmrw::core::mwmr::{MwmrReaderPriority, MwmrStarvationFree, MwmrWriterPriority};
use rmrw::core::raw::{RawMultiWriter, RawTryReadLock, RawTryRwLock};
use rmrw::core::RwLock;
use std::sync::Arc;

/// Generic end-to-end exercise of the typed API over any raw lock through
/// the **pinned-handle** path: concurrent increments must all land, reads
/// must see consistent state.
fn exercise<L: RawMultiWriter + 'static>(raw: L) {
    let threads = raw.max_processes().min(4);
    let lock = Arc::new(RwLock::with_raw(vec![0u64; 8], raw));
    let mut handles = Vec::new();
    for t in 0..threads {
        let lock = Arc::clone(&lock);
        handles.push(std::thread::spawn(move || {
            let mut h = lock.register().expect("capacity");
            for i in 0..200usize {
                if i % 3 == 0 {
                    let mut g = h.write();
                    let idx = (t + i) % 8;
                    g[idx] += 1;
                } else {
                    let g = h.read();
                    let sum: u64 = g.iter().sum();
                    std::hint::black_box(sum);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total_writes: u64 = threads as u64 * 67; // ceil(200/3) per thread
    let mut h = lock.register().unwrap();
    let sum: u64 = h.read().iter().sum();
    assert_eq!(sum, total_writes, "lost updates");
}

/// Same exercise through the **leased-pid** path: zero `register()` calls.
fn exercise_leased<L: RawMultiWriter + 'static>(raw: L) {
    let threads = raw.max_processes().min(4);
    let lock = Arc::new(RwLock::with_raw(0u64, raw));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        handles.push(std::thread::spawn(move || {
            for i in 0..200usize {
                if i % 3 == 0 {
                    *lock.write() += 1;
                } else {
                    std::hint::black_box(*lock.read());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*lock.read(), threads as u64 * 67, "lost updates");
}

#[test]
fn typed_api_over_starvation_free() {
    exercise(MwmrStarvationFree::new(4));
    exercise_leased(MwmrStarvationFree::new(4));
}

#[test]
fn typed_api_over_reader_priority() {
    exercise(MwmrReaderPriority::new(4));
    exercise_leased(MwmrReaderPriority::new(4));
}

#[test]
fn typed_api_over_writer_priority() {
    exercise(MwmrWriterPriority::new(4));
    exercise_leased(MwmrWriterPriority::new(4));
}

#[test]
fn typed_api_over_centralized_baseline() {
    exercise(CentralizedRwLock::new(4));
    exercise_leased(CentralizedRwLock::new(4));
}

#[test]
fn typed_api_over_courtois_writer_pref_baseline() {
    exercise(CourtoisWriterPrefRwLock::new(4));
    exercise_leased(CourtoisWriterPrefRwLock::new(4));
}

#[test]
fn typed_api_over_ticket_baseline() {
    exercise(TicketRwLock::new(4));
    exercise_leased(TicketRwLock::new(4));
}

#[test]
fn typed_api_over_distributed_flag_baseline() {
    exercise(DistributedFlagRwLock::new(4));
    exercise_leased(DistributedFlagRwLock::new(4));
}

#[test]
fn typed_api_over_tournament_baseline() {
    exercise(TournamentRwLock::new(4));
    exercise_leased(TournamentRwLock::new(4));
}

#[test]
fn typed_api_over_std_baseline() {
    exercise(StdRwLock::new(4));
    exercise_leased(StdRwLock::new(4));
}

#[test]
fn mwmr_locks_over_mcs_mutex_substrate() {
    // The Figure 3/4 constructions are generic over the mutex M; the test
    // suite cross-checks the MCS substrate end to end.
    exercise(MwmrStarvationFree::with_mutex(rmrw::mutex::McsLock::new(), 4));
    exercise(MwmrReaderPriority::with_mutex(rmrw::mutex::McsLock::new(), 4));
    exercise(MwmrWriterPriority::with_mutex(rmrw::mutex::McsLock::new(), 4));
}

#[test]
fn guards_release_on_panic_unwind() {
    // A panicking writer must not wedge the lock (guard Drop runs the
    // bounded exit section).
    let lock = Arc::new(RwLock::starvation_free(0u32, 2));
    let l2 = Arc::clone(&lock);
    let result = std::thread::spawn(move || {
        let _g = l2.write();
        panic!("poisoned on purpose");
    })
    .join();
    assert!(result.is_err());
    // The lock must still be usable (no poisoning semantics — by design).
    *lock.write() += 1;
    assert_eq!(*lock.read(), 1);
}

#[test]
fn handles_work_across_policies_simultaneously() {
    let a = RwLock::starvation_free(String::from("a"), 2);
    let b = RwLock::reader_priority(String::from("b"), 2);
    let c = RwLock::writer_priority(String::from("c"), 2);
    let mut ha = a.register().unwrap();
    let mut hb = b.register().unwrap();
    let mut hc = c.register().unwrap();
    ha.write().push('!');
    hb.write().push('!');
    hc.write().push('!');
    assert_eq!(*ha.read(), "a!");
    assert_eq!(*hb.read(), "b!");
    assert_eq!(*hc.read(), "c!");
}

#[test]
fn try_read_is_non_blocking_on_every_core_policy() {
    fn check<L: RawTryReadLock + RawMultiWriter + 'static>(raw: L) {
        let lock = Arc::new(RwLock::with_raw(0u8, raw));
        let w = lock.write();
        // The bounded attempt must return (None) while a writer holds the
        // lock — from another thread, so a blocking bug would hang, and a
        // soundness bug would see the writer's critical section.
        let l2 = Arc::clone(&lock);
        let denied = std::thread::spawn(move || l2.try_read().is_none()).join().unwrap();
        assert!(denied, "try_read entered or blocked under a held write lock");
        drop(w);
        assert_eq!(*lock.try_read().expect("writer gone"), 0);
    }
    check(MwmrStarvationFree::new(4));
    check(MwmrReaderPriority::new(4));
    check(MwmrWriterPriority::new(4));
}

#[test]
fn try_write_is_non_blocking_on_baselines() {
    fn check<L: RawTryRwLock + RawMultiWriter + 'static>(raw: L) {
        let lock = Arc::new(RwLock::with_raw(0u8, raw));
        let w = lock.write();
        let l2 = Arc::clone(&lock);
        let denied = std::thread::spawn(move || l2.try_write().is_none()).join().unwrap();
        assert!(denied, "try_write entered or blocked under a held write lock");
        drop(w);
        *lock.try_write().expect("writer gone") += 1;
        assert_eq!(*lock.read(), 1);
    }
    check(StdRwLock::new(4));
    check(CentralizedRwLock::new(4));
    check(TicketRwLock::new(4));
    check(DistributedFlagRwLock::new(4));
    check(TournamentRwLock::new(4));
}

#[test]
fn facade_reexports_are_coherent() {
    // The facade exposes all four sub-crates under stable names.
    let _ = rmrw::mutex::AndersonLock::new(2);
    let _ = rmrw::core::swmr::SwmrWriterPriority::new();
    let _ = rmrw::baselines::CentralizedRwLock::new(2);
    let alg = rmrw::sim::algos::fig1::Fig1::new(1);
    let report = rmrw::sim::explore::explore(&alg, &[1, 1], 1_000_000, &[]);
    assert!(report.clean());
}
