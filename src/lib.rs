//! **rmrw** — facade over the full reproduction of Bhatt & Jayanti,
//! *"Constant RMR Solutions to Reader Writer Synchronization"*
//! (Dartmouth TR2010-662 / PODC 2010).
//!
//! Re-exports the four library crates under stable names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `rmr-core` | the paper's five lock algorithms + typed `RwLock` API |
//! | [`mutex`] | `rmr-mutex` | Anderson's array lock (the paper's `M`), classic spin locks, memory backends (incl. the `Sched` scheduling backend) |
//! | [`bravo`] | `rmr-bravo` | BRAVO-style reader-biased fast path (`Bravo<L>`) over any raw lock |
//! | [`async_lock`] | `rmr-async` | waker-parking async front end (`AsyncRwLock<T, L>`): `read().await` instead of spinning, plus a dependency-free `block_on` |
//! | [`swap`] | `rmr-swap` | epoch-swap snapshot tier (`Snapshot<T>`): zero-RMR wait-free reads, copy-swap-retire writes with an RCU-style retirement knob |
//! | [`obs`] | `rmr-obs` | zero-cost-when-off observability: `Recorder` hooks in every tier, counters + log-bucket histograms (`StatsRecorder`), replayable Chrome-trace event ring |
//! | [`baselines`] | `rmr-baselines` | the prior-art lock classes the paper improves on |
//! | [`sim`] | `rmr-sim` | the abstract machine: model checking, RMR cost models, invariants |
//!
//! A fifth crate, `rmr-check` (deterministic schedule exploration of the
//! shipped locks — PCT, bounded DFS, the mutation battery), is a
//! dev-dependency only: it ships deliberately broken mutant locks for its
//! battery, which must never reach this production facade.
//!
//! Most applications only need [`core`]. The lock is used exactly like
//! `std::sync::RwLock` — pids are leased per thread behind the scenes:
//!
//! ```
//! use rmrw::core::RwLock;
//!
//! let lock = RwLock::starvation_free(vec![1, 2, 3], 8);
//! lock.write().push(4);
//! assert_eq!(lock.read().len(), 4);
//! assert_eq!(lock.try_read().expect("no writer").len(), 4);
//! ```
//!
//! For pinned pids (explicit registration) use [`core`]'s
//! `RwLock::register`; for the statically-enforced single-writer split of
//! Figures 1–2 use `rmrw::core::swmr_rwlock`. For read-mostly traffic,
//! wrap any lock in [`bravo`]'s `Bravo` to give readers a biased fast
//! path that skips the inner lock entirely while no writer is active:
//!
//! ```
//! use rmrw::bravo::Bravo;
//! use rmrw::core::mwmr::MwmrStarvationFree;
//! use rmrw::core::RwLock;
//!
//! let lock = RwLock::with_raw(0u32, Bravo::new(MwmrStarvationFree::new(8)));
//! *lock.write() += 1;
//! assert_eq!(*lock.read(), 1);
//! ```
//!
//! For data that is read overwhelmingly more than it is written (config,
//! routing tables, feature flags), [`swap`]'s `Snapshot` goes one step
//! further than Bravo: a read is wait-free and performs zero remote
//! memory references in steady state; writers pay a payload copy plus
//! deferred reclamation. Snapshot reads are also safely reentrant, where
//! a nested lock read can self-deadlock behind a waiting writer:
//!
//! ```
//! use rmrw::swap::Snapshot;
//!
//! let snap = Snapshot::new(vec![1u32, 2, 3], 8);
//! let outer = snap.load(); // wait-free, pins this version
//! assert_eq!(outer.len(), 3);
//! assert_eq!(snap.load().len(), 3); // nested load: fine
//! drop(outer);
//! snap.update(|v| v.iter().map(|x| x * 2).collect());
//! assert_eq!(snap.load()[0], 2);
//! ```
//!
//! Services that must not burn a core per waiter use [`async_lock`]'s
//! `AsyncRwLock` instead: a blocked `read().await` suspends (waker
//! parked, core released) and the lock's release paths wake it — over
//! any of the same raw locks, Bravo-wrapped included:
//!
//! ```
//! use rmrw::async_lock::exec::block_on;
//! use rmrw::async_lock::AsyncRwLock;
//! use rmrw::baselines::TicketRwLock;
//!
//! let lock = AsyncRwLock::with_raw(0u32, TicketRwLock::new(8));
//! block_on(async {
//!     *lock.write().await += 1;
//!     assert_eq!(*lock.read().await, 1);
//! });
//! ```
//!
//! Every tier accepts an [`obs`] recorder via `with_recorder` — the
//! default `NoopRecorder` compiles the hooks away entirely (proven
//! op-for-op by E19), while a `StatsRecorder` yields counters, p50/p99
//! latency histograms and an optional replayable event trace:
//!
//! ```
//! use rmrw::core::RwLock;
//! use rmrw::obs::{Event, StatsRecorder};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(StatsRecorder::new(8));
//! let lock = RwLock::starvation_free(0u32, 8).with_recorder(Arc::clone(&rec));
//! *lock.write() += 1;
//! assert_eq!(rec.counter(Event::WriteAcquire), 1);
//! ```
//!
//! See the workspace README for the paper map, DESIGN.md for the system
//! inventory, and EXPERIMENTS.md for how to reproduce the measurements.

#![warn(missing_docs)]

pub use rmr_async as async_lock;
pub use rmr_baselines as baselines;
pub use rmr_bravo as bravo;
pub use rmr_core as core;
pub use rmr_mutex as mutex;
pub use rmr_obs as obs;
pub use rmr_sim as sim;
pub use rmr_swap as swap;
